/**
 * Tests for the parallel sweep runner and the digest-keyed trace
 * cache: parallel execution must produce RunResults byte-identical to
 * the serial reference (including the protocol-oracle digest), results
 * must land at their job's index, and concurrent TraceCache lookups of
 * one configuration must generate the trace exactly once.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/sync.h"
#include "sim/sweep.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

using namespace fp;
using namespace fp::sim;

namespace {

workloads::WorkloadParams
smallParams(std::uint32_t num_gpus = 4, double scale = 0.05)
{
    workloads::WorkloadParams params;
    params.num_gpus = num_gpus;
    params.scale = scale;
    params.seed = 42;
    return params;
}

/** A mixed batch: several apps x paradigms, one config-swept job. */
std::vector<SweepJob>
mixedBatch()
{
    std::vector<SweepJob> jobs;
    const std::vector<Paradigm> paradigms = {
        Paradigm::single_gpu, Paradigm::p2p_stores, Paradigm::bulk_dma,
        Paradigm::finepack};
    for (const char *app : {"pagerank", "jacobi"}) {
        for (Paradigm paradigm : paradigms) {
            SweepJob job;
            job.workload = app;
            job.params = smallParams();
            job.paradigm = paradigm;
            jobs.push_back(job);
        }
    }
    // One oracle-checked FinePack run: the digest is the strongest
    // equality witness (order-sensitive over all transactions).
    SweepJob checked;
    checked.workload = "sssp";
    checked.params = smallParams();
    checked.paradigm = Paradigm::finepack;
    checked.config.check = true;
    jobs.push_back(checked);
    return jobs;
}

void
expectIdentical(const RunResult &a, const RunResult &b, std::size_t i)
{
    EXPECT_EQ(a.paradigm, b.paradigm) << "job " << i;
    EXPECT_EQ(a.total_time, b.total_time) << "job " << i;
    EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "job " << i;
    EXPECT_EQ(a.payload_bytes, b.payload_bytes) << "job " << i;
    EXPECT_EQ(a.header_bytes, b.header_bytes) << "job " << i;
    EXPECT_EQ(a.data_bytes, b.data_bytes) << "job " << i;
    EXPECT_EQ(a.messages, b.messages) << "job " << i;
    EXPECT_EQ(a.useful_bytes, b.useful_bytes) << "job " << i;
    EXPECT_EQ(a.protocol_bytes, b.protocol_bytes) << "job " << i;
    EXPECT_EQ(a.wasted_bytes, b.wasted_bytes) << "job " << i;
    EXPECT_EQ(a.avg_stores_per_packet, b.avg_stores_per_packet)
        << "job " << i;
    EXPECT_EQ(a.finepack_packets, b.finepack_packets) << "job " << i;
    EXPECT_EQ(a.wc_alone_wire_bytes, b.wc_alone_wire_bytes)
        << "job " << i;
    EXPECT_EQ(a.wc_line_wire_bytes, b.wc_line_wire_bytes)
        << "job " << i;
    EXPECT_EQ(a.uncompressed_wire_bytes, b.uncompressed_wire_bytes)
        << "job " << i;
    EXPECT_EQ(a.oracle_transactions, b.oracle_transactions)
        << "job " << i;
    EXPECT_EQ(a.oracle_stores, b.oracle_stores) << "job " << i;
    EXPECT_EQ(a.oracle_bytes, b.oracle_bytes) << "job " << i;
    EXPECT_EQ(a.oracle_value_bytes, b.oracle_value_bytes)
        << "job " << i;
    EXPECT_EQ(a.oracle_digest, b.oracle_digest) << "job " << i;
}

} // namespace

TEST(TraceCacheTest, DigestSeparatesEveryParameter)
{
    auto params = smallParams();
    auto base = TraceCache::digest("pagerank", params);
    EXPECT_EQ(TraceCache::digest("pagerank", params), base);
    EXPECT_NE(TraceCache::digest("jacobi", params), base);

    auto gpus = params;
    gpus.num_gpus = 8;
    EXPECT_NE(TraceCache::digest("pagerank", gpus), base);

    auto scaled = params;
    scaled.scale = 0.1;
    EXPECT_NE(TraceCache::digest("pagerank", scaled), base);

    auto seeded = params;
    seeded.seed = 43;
    EXPECT_NE(TraceCache::digest("pagerank", seeded), base);
}

TEST(TraceCacheTest, SameConfigurationReturnsSameInstance)
{
    auto &cache = TraceCache::instance();
    const auto &first = cache.get("pagerank", smallParams());
    const auto &second = cache.get("pagerank", smallParams());
    EXPECT_EQ(&first, &second);
}

TEST(TraceCacheTest, ConcurrentGetsGenerateOnce)
{
    // A configuration no other test uses, so this lookup is the first.
    auto params = smallParams(2, 0.03);
    params.seed = 977;

    auto &cache = TraceCache::instance();
    constexpr std::size_t lookups = 16;
    std::vector<const trace::WorkloadTrace *> seen(lookups, nullptr);
    ThreadPool pool(4);
    pool.parallelFor(lookups, [&](std::size_t i) {
        seen[i] = &cache.get("diffusion", params);
    });
    for (std::size_t i = 1; i < lookups; ++i)
        EXPECT_EQ(seen[i], seen[0]) << "lookup " << i;
}

TEST(SweepRunnerTest, DefaultJobsComesFromEnvironment)
{
    unsetenv("FINEPACK_BENCH_JOBS");
    EXPECT_EQ(SweepRunner::defaultJobs(), 1u);
    setenv("FINEPACK_BENCH_JOBS", "6", 1);
    EXPECT_EQ(SweepRunner::defaultJobs(), 6u);
    setenv("FINEPACK_BENCH_JOBS", "garbage", 1);
    EXPECT_EQ(SweepRunner::defaultJobs(), 1u);
    unsetenv("FINEPACK_BENCH_JOBS");
}

TEST(SweepRunnerTest, ResultsLandAtTheirJobIndex)
{
    auto jobs = mixedBatch();
    SweepRunner runner(4);
    auto results = runner.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(results[i].paradigm, jobs[i].paradigm)
            << "job " << i;
    // Paradigm orderings survive the fan-out: single-GPU is slowest,
    // FinePack beats plain P2P stores on these traces.
    EXPECT_GT(results[0].total_time, results[3].total_time);
}

TEST(SweepRunnerTest, ParallelMatchesSerialByteForByte)
{
    auto jobs = mixedBatch();

    SweepRunner serial(1);
    ASSERT_EQ(serial.jobs(), 1u);
    auto reference = serial.run(jobs);

    SweepRunner parallel(4);
    ASSERT_EQ(parallel.jobs(), 4u);
    auto results = parallel.run(jobs);

    ASSERT_EQ(reference.size(), results.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        expectIdentical(reference[i], results[i], i);

    // The checked job really exercised the oracle.
    EXPECT_GT(reference.back().oracle_transactions, 0u);
    EXPECT_NE(reference.back().oracle_digest, 0u);
}

TEST(SweepRunnerTest, RepeatedParallelRunsAreStable)
{
    auto jobs = mixedBatch();
    SweepRunner runner(4);
    auto first = runner.run(jobs);
    auto second = runner.run(jobs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdentical(first[i], second[i], i);
}

TEST(SweepRunnerTest, UnknownWorkloadThrowsAndRunnerSurvives)
{
    SweepJob bad;
    bad.workload = "no-such-workload";
    bad.params = smallParams();

    SweepRunner runner(2);
    EXPECT_ANY_THROW(runner.run({bad}));

    // The failed generation released its cache claim; good jobs run.
    SweepJob good;
    good.workload = "pagerank";
    good.params = smallParams();
    good.paradigm = Paradigm::p2p_stores;
    auto results = runner.run({good});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].total_time, 0u);
}
