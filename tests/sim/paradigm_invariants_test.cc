/**
 * Parameterized cross-paradigm invariants, run for every evaluation
 * workload at a small scale: the relationships the paper's evaluation
 * depends on must hold app by app, not just on average.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

using namespace fp;
using namespace fp::sim;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name)
{
    workloads::WorkloadParams params;
    params.num_gpus = 4;
    params.scale = 0.05;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

} // namespace

class ParadigmInvariants : public ::testing::TestWithParam<std::string>
{
  protected:
    SimulationDriver driver;
};

TEST_P(ParadigmInvariants, InfiniteBandwidthBoundsEveryParadigm)
{
    const auto &trace = smallTrace(GetParam());
    Tick bound = driver.run(trace, Paradigm::infinite_bw).total_time;
    for (auto paradigm : {Paradigm::p2p_stores, Paradigm::bulk_dma,
                          Paradigm::finepack, Paradigm::write_combine,
                          Paradigm::gps}) {
        EXPECT_GE(driver.run(trace, paradigm).total_time, bound)
            << toString(paradigm);
    }
}

TEST_P(ParadigmInvariants, FinePackNeverSlowerThanRawStores)
{
    const auto &trace = smallTrace(GetParam());
    Tick fp_time = driver.run(trace, Paradigm::finepack).total_time;
    Tick p2p_time = driver.run(trace, Paradigm::p2p_stores).total_time;
    // Coalescing only removes wire bytes; with the same issue stream
    // FinePack can tie (hidden comm) but never lose materially.
    EXPECT_LE(static_cast<double>(fp_time),
              static_cast<double>(p2p_time) * 1.02);
}

TEST_P(ParadigmInvariants, FinePackWireNeverExceedsRawWire)
{
    const auto &trace = smallTrace(GetParam());
    auto fp_run = driver.run(trace, Paradigm::finepack);
    auto p2p_run = driver.run(trace, Paradigm::p2p_stores);
    EXPECT_LE(fp_run.wire_bytes, p2p_run.wire_bytes);
}

TEST_P(ParadigmInvariants, ClassificationSumsToWireBytes)
{
    const auto &trace = smallTrace(GetParam());
    for (auto paradigm : {Paradigm::p2p_stores, Paradigm::bulk_dma,
                          Paradigm::finepack, Paradigm::write_combine,
                          Paradigm::gps}) {
        RunResult r = driver.run(trace, paradigm);
        EXPECT_EQ(r.useful_bytes + r.protocol_bytes + r.wasted_bytes,
                  r.wire_bytes)
            << toString(paradigm);
    }
}

TEST_P(ParadigmInvariants, DeliveredDataCoversUniqueUpdates)
{
    // FinePack's coalescing may drop redundant bytes, but everything
    // the destination needs (unique updated bytes) must still arrive.
    const auto &trace = smallTrace(GetParam());
    RunResult r = driver.run(trace, Paradigm::finepack);
    EXPECT_GE(r.data_bytes, trace::totalUniqueBytes(trace));
}

TEST_P(ParadigmInvariants, WcAloneAccountingIsBetweenPackedAndRaw)
{
    const auto &trace = smallTrace(GetParam());
    auto fp_run = driver.run(trace, Paradigm::finepack);
    auto p2p_run = driver.run(trace, Paradigm::p2p_stores);
    // "Write combining alone" keeps the coalescing but pays a TLP per
    // run: at least as many bytes as FinePack, at most raw P2P.
    EXPECT_GE(fp_run.wc_alone_wire_bytes, fp_run.wire_bytes);
    EXPECT_LE(fp_run.wc_alone_wire_bytes, p2p_run.wire_bytes);
}

TEST_P(ParadigmInvariants, TimeoutFlushPreservesWireAccounting)
{
    const auto &trace = smallTrace(GetParam());
    SimConfig config;
    config.finepack_flush_timeout = 500 * ticks_per_ns;
    SimulationDriver timeout_driver(config);
    RunResult with_timeout =
        timeout_driver.run(trace, Paradigm::finepack);
    RunResult without = driver.run(trace, Paradigm::finepack);
    // Same data delivered; only the packing may fragment.
    EXPECT_EQ(with_timeout.data_bytes, without.data_bytes);
    EXPECT_GE(with_timeout.wire_bytes, without.wire_bytes);
}

TEST_P(ParadigmInvariants, MultiWindowPreservesDataAndClassification)
{
    const auto &trace = smallTrace(GetParam());
    SimConfig config;
    config.finepack.windows_per_partition = 4;
    SimulationDriver multi_driver(config);
    RunResult multi = multi_driver.run(trace, Paradigm::finepack);
    RunResult single = driver.run(trace, Paradigm::finepack);
    // Splitting the entry budget across windows can flush earlier and
    // elide fewer redundant bytes, so delivered data may differ - but
    // everything the destination needs must still arrive, and the
    // oracle-based useful count is configuration-independent.
    EXPECT_GE(multi.data_bytes, trace::totalUniqueBytes(trace));
    EXPECT_EQ(multi.useful_bytes, single.useful_bytes);
    EXPECT_EQ(multi.useful_bytes + multi.protocol_bytes +
                  multi.wasted_bytes,
              multi.wire_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ParadigmInvariants,
                         ::testing::ValuesIn(
                             fp::workloads::allWorkloadNames()),
                         [](const auto &info) { return info.param; });
