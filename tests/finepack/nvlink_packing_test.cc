/** Unit tests for FinePack-over-NVLink byte accounting (Sec. IV-C). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "finepack/nvlink_packing.hh"

using namespace fp;
using namespace fp::finepack;

namespace {

FinePackTransaction
makeTransaction(std::uint32_t stores, std::uint32_t bytes,
                std::uint64_t stride = 256)
{
    FinePackTransaction txn(0, 1, 0x1000, defaultConfig());
    for (std::uint32_t i = 0; i < stores; ++i)
        txn.append(0x1000 + i * stride, bytes);
    return txn;
}

} // namespace

TEST(NvlinkPackingTest, SinglePacketAccounting)
{
    NvlinkFinePackModel model;
    FinePackTransaction txn = makeTransaction(10, 8);
    // Payload: 10 * (5 + 8) = 130 B -> 9 flits + 1 header flit.
    EXPECT_EQ(model.wireBytes(txn), (9 + 1) * 16u);
}

TEST(NvlinkPackingTest, RawStoresPayHeaderAndBeFlitEach)
{
    NvlinkFinePackModel model;
    FinePackTransaction txn = makeTransaction(10, 8);
    // Each 8 B store: header flit + BE flit + 1 data flit = 48 B.
    EXPECT_EQ(model.rawWireBytes(txn), 10 * 48u);
}

TEST(NvlinkPackingTest, PackingGainSimilarToPcie)
{
    // Section IV-C: "the small packet efficiency of PCIe and NVLink is
    // similar for sub-cache line stores and the general approach ...
    // should achieve similar benefits."
    NvlinkFinePackModel model;
    icn::PcieProtocol pcie(icn::PcieGen::gen4);

    FinePackTransaction txn = makeTransaction(42, 8);
    double nvlink_gain = model.packingGain(txn);

    double pcie_raw = 0.0;
    for (const SubPacket &sub : txn.subPackets())
        pcie_raw += static_cast<double>(pcie.storeWireBytes(
            txn.baseAddr() + sub.offset, sub.length));
    double pcie_packed = static_cast<double>(
        pcie.tlpOverhead() + txn.wirePayloadBytes());
    double pcie_gain = pcie_raw / pcie_packed;

    EXPECT_GT(nvlink_gain, 2.0);
    EXPECT_GT(pcie_gain, 2.0);
    EXPECT_NEAR(nvlink_gain / pcie_gain, 1.0, 0.35);
}

TEST(NvlinkPackingTest, LargeTransactionSplitsIntoPackets)
{
    NvlinkFinePackModel model;
    // 30 full-line runs: payload = 30 * 133 = 3990 B > 256 B NVLink
    // max payload -> 16 packets, each paying a header flit.
    FinePackTransaction txn = makeTransaction(30, 128, 256);
    std::uint64_t wire = model.wireBytes(txn);
    std::uint64_t packets = (3990 + 255) / 256;
    EXPECT_GE(wire, 3990u + packets * 16u);
    // Still cheaper than raw full-line packets.
    EXPECT_LT(wire, model.rawWireBytes(txn));
}

TEST(NvlinkPackingTest, AlignedFullFlitStoresShrinkTheGain)
{
    // Flit-aligned 16 B stores need no BE flit raw, so packing gains
    // less than for ragged 8 B stores - the spike effect of Figure 2.
    NvlinkFinePackModel model;
    FinePackTransaction ragged = makeTransaction(16, 8);
    FinePackTransaction aligned = makeTransaction(16, 16);
    EXPECT_GT(model.packingGain(ragged), model.packingGain(aligned));
}

TEST(NvlinkPackingTest, EmptyTransactionPanics)
{
    NvlinkFinePackModel model;
    FinePackTransaction txn(0, 1, 0, defaultConfig());
    EXPECT_THROW(model.wireBytes(txn), fp::common::SimError);
}
