/**
 * Property-based tests over the FinePack pipeline: for randomized store
 * streams, the coalesce -> packetize -> de-packetize -> apply path must
 * be semantically equivalent to applying the stores directly (the GPU
 * weak memory model only lets FinePack reorder/merge stores *between*
 * synchronization points, and same-address program order must hold).
 *
 * Parameterized over sub-header geometry (Table II) and stream shapes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"
#include "finepack/write_combine.hh"
#include "gpu/functional_memory.hh"

using namespace fp;
using namespace fp::finepack;
using fp::gpu::FunctionalMemory;
using fp::icn::Store;

namespace {

/** Shape of a random store stream. */
struct StreamShape
{
    const char *name;
    Addr region_size;      ///< addresses drawn from [base, base+size)
    std::uint32_t max_store; ///< store sizes in [1, max_store]
    bool sequential;       ///< ascending with jitter vs uniform random
};

const StreamShape stream_shapes[] = {
    {"dense_sequential", 64 * KiB, 16, true},
    {"sparse_random", 8 * MiB, 8, false},
    {"wide_random", 2 * GiB, 32, false},
    {"hot_set", 4 * KiB, 8, false},
};

class PipelineProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t /*subheader*/, int /*shape*/,
                     std::uint64_t /*seed*/>>
{
  protected:
    FinePackConfig
    config() const
    {
        return configWithSubheader(std::get<0>(GetParam()));
    }

    const StreamShape &
    shape() const
    {
        return stream_shapes[std::get<1>(GetParam())];
    }

    std::uint64_t seed() const { return std::get<2>(GetParam()); }

    /** Generate one random, line-contained store with payload data. */
    Store
    randomStore(common::Rng &rng, Addr base)
    {
        const StreamShape &s = shape();
        Addr addr;
        if (s.sequential) {
            _cursor += rng.below(256);
            addr = base + (_cursor % s.region_size);
        } else {
            addr = base + rng.below(s.region_size);
        }
        auto size = static_cast<std::uint32_t>(
            rng.range(1, s.max_store));
        Addr line_end = (addr & ~Addr{127}) + 128;
        if (addr + size > line_end)
            size = static_cast<std::uint32_t>(line_end - addr);

        Store store(addr, size, 0, 1);
        store.data.resize(size);
        for (auto &byte : store.data)
            byte = static_cast<std::uint8_t>(rng.next());
        return store;
    }

  private:
    Addr _cursor = 0;
};

} // namespace

TEST_P(PipelineProperty, FinePackDeliveryMatchesDirectDelivery)
{
    FinePackConfig cfg = config();
    common::Rng rng(seed());
    const Addr base = 0x40000000;

    RwqPartition partition(1, cfg);
    Packetizer packetizer(0, cfg);
    DePacketizer depacketizer(cfg);

    FunctionalMemory direct, via_finepack;

    auto deliver = [&](const FlushedPartition &flushed) {
        if (flushed.empty())
            return;
        FinePackTransaction txn = packetizer.packetize(flushed);
        for (const Store &store : depacketizer.unpack(txn))
            via_finepack.apply(store);
    };

    const int stores = 3000;
    std::vector<FlushedPartition> sink;
    for (int i = 0; i < stores; ++i) {
        Store store = randomStore(rng, base);
        direct.apply(store);
        sink.clear();
        partition.push(store, sink);
        for (const auto &flushed : sink)
            deliver(flushed);
        // Occasional synchronization points.
        if (rng.chance(0.01))
            deliver(partition.flush(FlushReason::release));
    }
    deliver(partition.flush(FlushReason::release));

    EXPECT_TRUE(direct.sameContents(via_finepack))
        << "memory divergence for shape " << shape().name;
}

TEST_P(PipelineProperty, TransactionsRespectFormatLimits)
{
    FinePackConfig cfg = config();
    common::Rng rng(seed() ^ 0x1111);
    const Addr base = 0x40000000;

    RwqPartition partition(1, cfg);
    Packetizer packetizer(0, cfg);

    auto check = [&](const FlushedPartition &flushed) {
        if (flushed.empty())
            return;
        FinePackTransaction txn = packetizer.packetize(flushed);
        EXPECT_LE(txn.rawPayloadBytes(), cfg.max_payload);
        for (const SubPacket &sub : txn.subPackets()) {
            EXPECT_LT(sub.offset + sub.length, cfg.addressableRange() + 1);
            EXPECT_LT(sub.length, 1u << cfg.length_bits);
            EXPECT_GT(sub.length, 0u);
        }
    };

    std::vector<FlushedPartition> sink;
    for (int i = 0; i < 3000; ++i) {
        sink.clear();
        partition.push(randomStore(rng, base), sink);
        for (const auto &flushed : sink)
            check(flushed);
    }
    check(partition.flush(FlushReason::release));
}

TEST_P(PipelineProperty, ByteConservation)
{
    // pushed bytes == delivered unique bytes + elided (overwritten).
    FinePackConfig cfg = config();
    common::Rng rng(seed() ^ 0x2222);
    const Addr base = 0x40000000;

    RwqPartition partition(1, cfg);
    std::uint64_t pushed = 0, delivered = 0;

    auto account = [&](const FlushedPartition &flushed) {
        for (const QueueEntry &entry : flushed.entries)
            delivered += entry.validBytes();
    };

    std::vector<FlushedPartition> sink;
    for (int i = 0; i < 2000; ++i) {
        Store store = randomStore(rng, base);
        pushed += store.size;
        sink.clear();
        partition.push(store, sink);
        for (const auto &flushed : sink)
            account(flushed);
    }
    account(partition.flush(FlushReason::release));

    EXPECT_EQ(pushed, delivered + partition.bytesElided());
    EXPECT_EQ(pushed, partition.bytesPushed());
}

TEST_P(PipelineProperty, EntryAndPayloadInvariantsHoldThroughout)
{
    FinePackConfig cfg = config();
    common::Rng rng(seed() ^ 0x3333);
    const Addr base = 0x40000000;

    RwqPartition partition(1, cfg);
    std::vector<FlushedPartition> sink;
    for (int i = 0; i < 2000; ++i) {
        partition.push(randomStore(rng, base), sink);
        ASSERT_LE(partition.entryCount(), cfg.queue_entries);
        ASSERT_LE(partition.availablePayload(), cfg.max_payload);
        if (!partition.empty()) {
            // The available payload register is exactly max minus the
            // packed cost of everything buffered.
            FlushedPartition snapshot =
                partition.flush(FlushReason::release);
            std::uint64_t cost = 0;
            for (const QueueEntry &entry : snapshot.entries)
                cost += entry.packedCost(cfg);
            EXPECT_LE(cost, cfg.max_payload);
            // Re-push is unnecessary; one consistency probe per stream
            // position is enough.
            break;
        }
    }
}

TEST_P(PipelineProperty, WriteCombineDeliveryMatchesDirectDelivery)
{
    common::Rng rng(seed() ^ 0x4444);
    const Addr base = 0x40000000;

    WriteCombineBuffer wc(0, 1, 64, 128);
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    FunctionalMemory direct, via_wc;

    auto deliver = [&](const WcLine &line) {
        auto msg = wc.lineToMessage(line, protocol);
        for (const Store &store : msg->stores)
            via_wc.apply(store);
    };

    for (int i = 0; i < 3000; ++i) {
        Store store = randomStore(rng, base);
        direct.apply(store);
        auto evicted = wc.push(store);
        if (evicted)
            deliver(*evicted);
    }
    for (const WcLine &line : wc.flushAll())
        deliver(line);

    EXPECT_TRUE(direct.sameContents(via_wc));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 6u),
                       ::testing::Range(0, 4),
                       ::testing::Values(1ull, 42ull, 20260705ull)),
    [](const auto &info) {
        return "sub" + std::to_string(std::get<0>(info.param)) + "_" +
               stream_shapes[std::get<1>(info.param)].name + "_seed" +
               std::to_string(std::get<2>(info.param));
    });
