/**
 * Unit tests for the multi-window remote write queue partition (the
 * Section IV-C alternative: multiple open outer transactions per
 * destination to avoid window thrashing).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"
#include "gpu/functional_memory.hh"

using namespace fp;
using namespace fp::finepack;
using fp::icn::Store;

namespace {

FinePackConfig
multiWindowConfig(std::uint32_t windows)
{
    FinePackConfig config = configWithSubheader(3); // 16 KiB windows
    config.windows_per_partition = windows;
    config.validate();
    return config;
}

Store
makeStore(Addr addr, std::uint32_t size = 8, GpuId dst = 1)
{
    return Store(addr, size, 0, dst);
}

} // namespace

TEST(MultiWindowTest, ConfigValidation)
{
    FinePackConfig config = defaultConfig();
    config.windows_per_partition = 0;
    EXPECT_THROW(config.validate(), common::SimError);
    config.windows_per_partition = 3; // 64 entries not divisible
    EXPECT_THROW(config.validate(), common::SimError);
    config.windows_per_partition = 4;
    EXPECT_NO_THROW(config.validate());
}

TEST(MultiWindowTest, AlternatingRegionsDoNotThrashWithTwoWindows)
{
    // Two interleaved streams 1 MiB apart: one window thrashes on
    // every store, two windows absorb both streams.
    RwqPartition one(1, multiWindowConfig(1));
    RwqPartition two(1, multiWindowConfig(2));

    std::vector<FlushedPartition> sink_one, sink_two;
    for (int i = 0; i < 32; ++i) {
        Addr addr = (i % 2 == 0 ? 0x0 : 0x100000) +
                    static_cast<Addr>(i) * 8;
        one.push(makeStore(addr), sink_one);
        two.push(makeStore(addr), sink_two);
    }
    // Single window: a flush on (nearly) every push.
    EXPECT_GE(sink_one.size(), 30u);
    // Two windows: no flush at all.
    EXPECT_TRUE(sink_two.empty());
    EXPECT_EQ(two.bufferedStores(), 32u);
    EXPECT_EQ(two.flushes(FlushReason::window_violation), 0u);
}

TEST(MultiWindowTest, LruWindowIsEvicted)
{
    RwqPartition partition(1, multiWindowConfig(2));
    std::vector<FlushedPartition> sink;
    partition.push(makeStore(0x0), sink);        // window A
    partition.push(makeStore(0x100000), sink);   // window B
    partition.push(makeStore(0x8), sink);        // hit A (A = MRU)
    ASSERT_TRUE(sink.empty());

    // A third region evicts B, the least recently used window.
    partition.push(makeStore(0x200000), sink);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink[0].window_base, 0x100000u);
    // A's contents are still buffered.
    EXPECT_EQ(partition.bufferedStores(), 3u);
}

TEST(MultiWindowTest, EntryBudgetIsSplitAcrossWindows)
{
    FinePackConfig config = multiWindowConfig(2); // 32 entries each
    RwqPartition partition(1, config);
    std::vector<FlushedPartition> sink;
    // 32 distinct lines fill one window's budget; the 33rd flushes it.
    for (std::uint32_t i = 0; i < 32; ++i)
        partition.push(makeStore(i * 128), sink);
    EXPECT_TRUE(sink.empty());
    partition.push(makeStore(32 * 128), sink);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink[0].entries.size(), 32u);
    EXPECT_EQ(partition.flushes(FlushReason::entries_full), 1u);
}

TEST(MultiWindowTest, ReleaseFlushesEveryWindow)
{
    RwqPartition partition(1, multiWindowConfig(4));
    std::vector<FlushedPartition> sink;
    for (int w = 0; w < 4; ++w)
        partition.push(makeStore(static_cast<Addr>(w) * 0x100000),
                       sink);
    ASSERT_TRUE(sink.empty());

    std::vector<FlushedPartition> flushed;
    partition.flush(FlushReason::release, flushed);
    EXPECT_EQ(flushed.size(), 4u);
    EXPECT_TRUE(partition.empty());
    EXPECT_EQ(partition.flushes(FlushReason::release), 4u);
}

TEST(MultiWindowTest, ConflictFlushesAllWindows)
{
    RwqPartition partition(1, multiWindowConfig(2));
    std::vector<FlushedPartition> sink;
    partition.push(makeStore(0x0), sink);
    partition.push(makeStore(0x100000), sink);

    std::vector<FlushedPartition> flushed;
    EXPECT_FALSE(partition.flushIfConflict(0x9999000, 8,
                                           FlushReason::load_conflict,
                                           flushed));
    EXPECT_TRUE(flushed.empty());
    EXPECT_TRUE(partition.flushIfConflict(0x100000, 8,
                                          FlushReason::load_conflict,
                                          flushed));
    EXPECT_EQ(flushed.size(), 2u);
    EXPECT_TRUE(partition.empty());
}

TEST(MultiWindowTest, SingleWindowAccessorsPanicOnMulti)
{
    RwqPartition partition(1, multiWindowConfig(2));
    EXPECT_THROW(partition.availablePayload(), common::SimError);
    EXPECT_THROW(partition.baseAddrRegister(), common::SimError);
    EXPECT_NO_THROW(partition.window(0));
    EXPECT_NO_THROW(partition.window(1));
    EXPECT_THROW(partition.window(2), common::SimError);
    EXPECT_EQ(partition.windowCount(), 2u);
}

TEST(MultiWindowTest, FunctionalEquivalenceWithScatteredStream)
{
    // Multi-window delivery must still be semantically identical to
    // direct application.
    FinePackConfig config = multiWindowConfig(4);
    RwqPartition partition(1, config);
    Packetizer packetizer(0, config);
    DePacketizer depacketizer(config);
    common::Rng rng(99);

    gpu::FunctionalMemory direct, via_finepack;
    auto deliver = [&](const FlushedPartition &flushed) {
        if (flushed.empty())
            return;
        for (const Store &store :
             depacketizer.unpack(packetizer.packetize(flushed)))
            via_finepack.apply(store);
    };

    std::vector<FlushedPartition> sink;
    for (int i = 0; i < 4000; ++i) {
        Addr addr = rng.below(8) * 0x400000 + rng.below(64 * KiB);
        // Keep the store line-contained, as the L1 coalescer would.
        Addr line_end = (addr & ~Addr{127}) + 128;
        auto size = static_cast<std::uint32_t>(
            std::min<Addr>(4, line_end - addr));
        Store store = makeStore(addr, size);
        store.data.resize(size);
        for (auto &byte : store.data)
            byte = static_cast<std::uint8_t>(rng.next());
        direct.apply(store);
        sink.clear();
        partition.push(store, sink);
        for (const auto &flushed : sink)
            deliver(flushed);
    }
    std::vector<FlushedPartition> rest;
    partition.flush(FlushReason::release, rest);
    for (const auto &flushed : rest)
        deliver(flushed);

    EXPECT_TRUE(direct.sameContents(via_finepack));
}

TEST(MultiWindowTest, MoreWindowsNeverPackWorseOnRoundRobinStreams)
{
    // A CT-like round-robin scatter across K regions: stores per packet
    // should improve monotonically-ish as windows approach K.
    auto avg_packing = [](std::uint32_t windows) {
        FinePackConfig config = defaultConfig(); // 1 GiB windows
        config.windows_per_partition = windows;
        RwqPartition partition(1, config);
        Packetizer packetizer(0, config);
        std::vector<FlushedPartition> sink;
        for (int i = 0; i < 8192; ++i) {
            Addr region = static_cast<Addr>(i % 4) * 2 * GiB;
            Addr addr = region + static_cast<Addr>(i / 4) * 8;
            sink.clear();
            partition.push(makeStore(addr, 4), sink);
            for (const auto &flushed : sink)
                packetizer.packetize(flushed);
        }
        std::vector<FlushedPartition> rest;
        partition.flush(FlushReason::release, rest);
        for (const auto &flushed : rest)
            packetizer.packetize(flushed);
        return packetizer.avgStoresPerPacket();
    };

    double one = avg_packing(1);
    double four = avg_packing(4);
    EXPECT_LE(one, 1.1);   // thrash: one store per packet
    EXPECT_GT(four, 50.0); // four windows absorb all four regions
}
