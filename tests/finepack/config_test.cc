/** Unit tests for the FinePack configuration (Tables II and III). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "finepack/config.hh"

using namespace fp;
using namespace fp::finepack;

TEST(FinePackConfigTest, DefaultMatchesTableIII)
{
    FinePackConfig config = defaultConfig();
    EXPECT_EQ(config.subheader_bytes, 5u);
    EXPECT_EQ(config.offsetBits(), 30u);
    EXPECT_EQ(config.max_payload, 4096u);
    EXPECT_EQ(config.queue_entries, 64u);
    EXPECT_EQ(config.entry_bytes, 128u);
    EXPECT_EQ(config.length_bits, 10u);
}

TEST(FinePackConfigTest, TableIIAddressableRanges)
{
    // Table II: sub-header bytes -> addressable range.
    struct Row { std::uint32_t bytes; std::uint32_t addr_bits;
                 std::uint64_t range; };
    const Row rows[] = {
        {2, 6, 64},
        {3, 14, 16 * KiB},
        {4, 22, 4 * MiB},
        {5, 30, 1 * GiB},
        {6, 38, 256 * GiB},
    };
    for (const Row &row : rows) {
        FinePackConfig config = configWithSubheader(row.bytes);
        EXPECT_EQ(config.offsetBits(), row.addr_bits)
            << row.bytes << " byte sub-header";
        EXPECT_EQ(config.addressableRange(), row.range)
            << row.bytes << " byte sub-header";
    }
}

TEST(FinePackConfigTest, ValidationRejectsBadGeometry)
{
    FinePackConfig config = defaultConfig();
    config.subheader_bytes = 1;
    EXPECT_THROW(config.validate(), common::SimError);

    config = defaultConfig();
    config.length_bits = 40; // exceeds the sub-header
    EXPECT_THROW(config.validate(), common::SimError);

    config = defaultConfig();
    config.length_bits = 6; // cannot express a 128 B entry
    EXPECT_THROW(config.validate(), common::SimError);

    config = defaultConfig();
    config.max_payload = 4095; // not a DW multiple
    EXPECT_THROW(config.validate(), common::SimError);

    config = defaultConfig();
    config.queue_entries = 0;
    EXPECT_THROW(config.validate(), common::SimError);

    config = defaultConfig();
    config.entry_bytes = 100; // not a power of two
    EXPECT_THROW(config.validate(), common::SimError);
}

TEST(FinePackConfigTest, TableIIIStorageFootprint)
{
    // 4-GPU system: 3 partitions x 64 entries x 128 B = 24 KiB data per
    // GPU... the paper quotes 48 KB for the system-level total of data
    // storage at 192 entries of 144 B (with byte enables); check the
    // entry count arithmetic.
    FinePackConfig config = defaultConfig();
    std::uint32_t partitions = 3; // 4 GPUs, one partition per peer
    EXPECT_EQ(partitions * config.queue_entries, 192u);
    // 144 B per entry = 128 data + 16 byte-enable bytes.
    EXPECT_EQ(config.entry_bytes + config.entry_bytes / 8, 144u);
}
