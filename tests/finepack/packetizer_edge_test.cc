/**
 * Packetizer edge cases the protocol oracle is designed to guard:
 * non-contiguous byte-enable runs splitting into sub-packets, stores at
 * the maximum encodable address offset, and empty / fully-overwritten
 * partitions.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"

using namespace fp;
using namespace fp::finepack;
using fp::icn::Store;

namespace {

Store
makeStore(Addr addr, std::uint32_t size,
          std::vector<std::uint8_t> data = {})
{
    Store store(addr, size, 0, 1);
    store.data = std::move(data);
    return store;
}

} // namespace

TEST(PacketizerEdgeTest, NonContiguousRunsSplitIntoSubPackets)
{
    // Five disjoint byte-enable runs inside one 128 B line: sub-headers
    // carry no byte enables, so each run must become its own sub-packet
    // with its own data slice.
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    std::vector<std::pair<Addr, std::uint32_t>> runs = {
        {0x1000, 2}, {0x1008, 1}, {0x1010, 4}, {0x1020, 8}, {0x107f, 1},
    };
    for (auto [addr, size] : runs) {
        std::vector<std::uint8_t> data(size);
        for (std::uint32_t i = 0; i < size; ++i)
            data[i] = static_cast<std::uint8_t>(addr + i);
        partition.push(makeStore(addr, size, std::move(data)));
    }
    FlushedPartition flushed = partition.flush(FlushReason::release);
    ASSERT_EQ(flushed.entries.size(), 1u);

    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);
    ASSERT_EQ(txn.size(), runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SubPacket &sub = txn.subPackets()[i];
        EXPECT_EQ(txn.baseAddr() + sub.offset, runs[i].first);
        EXPECT_EQ(sub.length, runs[i].second);
        ASSERT_EQ(sub.data.size(), runs[i].second);
        for (std::uint32_t b = 0; b < sub.length; ++b)
            EXPECT_EQ(sub.data[b],
                      static_cast<std::uint8_t>(runs[i].first + b));
    }
}

TEST(PacketizerEdgeTest, AdjacentStoresMergeIntoOneRun)
{
    // The converse: runs that touch must NOT split.
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    partition.push(makeStore(0x1000, 4));
    partition.push(makeStore(0x1004, 4));
    FlushedPartition flushed = partition.flush(FlushReason::release);

    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);
    ASSERT_EQ(txn.size(), 1u);
    EXPECT_EQ(txn.subPackets()[0].length, 8u);
}

TEST(PacketizerEdgeTest, StoreAtMaximumEncodableOffset)
{
    // The last line of the window: offsets up to 2^offsetBits - 1 must
    // round-trip through the sub-header encoding.
    FinePackConfig config = defaultConfig();
    const std::uint64_t range = config.addressableRange();
    const Addr base = 7 * range; // window-grid aligned, non-zero

    RwqPartition partition(1, config);
    partition.push(makeStore(base, 4)); // opens the window at its base
    partition.push(makeStore(base + range - 8, 8)); // last 8 bytes
    FlushedPartition flushed = partition.flush(FlushReason::release);
    EXPECT_EQ(flushed.window_base, base);

    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);
    ASSERT_EQ(txn.size(), 2u);
    const SubPacket &last = txn.subPackets()[1];
    EXPECT_EQ(last.offset, range - 8);
    EXPECT_EQ(last.offset + last.length, range); // exactly at the edge

    auto stores = txn.unpack();
    EXPECT_EQ(stores[1].addr, base + range - 8);
    EXPECT_EQ(stores[1].end(), base + range);
}

TEST(PacketizerEdgeTest, OneByteAtVeryLastOffset)
{
    FinePackConfig config = defaultConfig();
    const std::uint64_t range = config.addressableRange();
    RwqPartition partition(1, config);
    partition.push(makeStore(range - 1, 1)); // offset 2^N - 1
    FlushedPartition flushed = partition.flush(FlushReason::release);

    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);
    ASSERT_EQ(txn.size(), 1u);
    EXPECT_EQ(txn.subPackets()[0].offset, range - 1);
    EXPECT_EQ(txn.subPackets()[0].length, 1u);
}

TEST(PacketizerEdgeTest, EmptyPartitionFlushIsEmptyAndUnpacketizable)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    FlushedPartition flushed = partition.flush(FlushReason::release);
    EXPECT_TRUE(flushed.empty());
    EXPECT_EQ(flushed.packed_store_count, 0u);

    // Empty flushes never reach the packetizer; feeding one anyway is
    // a caller bug and panics.
    Packetizer packetizer(0, config);
    EXPECT_THROW(packetizer.packetize(flushed), common::SimError);
    EXPECT_EQ(packetizer.packetsEmitted(), 0u);
}

TEST(PacketizerEdgeTest, FullyOverwrittenEntryKeepsLastData)
{
    // Write a full line, then overwrite every byte: entry count stays
    // 1, the packed transaction carries exactly one line-sized
    // sub-packet holding only the second write's bytes.
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);

    std::vector<std::uint8_t> first(config.entry_bytes, 0x11);
    std::vector<std::uint8_t> second(config.entry_bytes, 0x22);
    partition.push(makeStore(0x2000, config.entry_bytes, first));
    EXPECT_EQ(partition.entryCount(), 1u);
    partition.push(makeStore(0x2000, config.entry_bytes, second));
    EXPECT_EQ(partition.entryCount(), 1u);
    EXPECT_EQ(partition.bytesElided(), config.entry_bytes);

    FlushedPartition flushed = partition.flush(FlushReason::release);
    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);
    ASSERT_EQ(txn.size(), 1u);
    EXPECT_EQ(txn.subPackets()[0].length, config.entry_bytes);
    for (std::uint8_t byte : txn.subPackets()[0].data)
        EXPECT_EQ(byte, 0x22);
    // Two program stores folded into one wire transaction.
    EXPECT_EQ(flushed.packed_store_count, 2u);
}

TEST(PacketizerEdgeTest, SparseOverwriteReplacesOnlyWrittenBytes)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    partition.push(makeStore(0x3000, 8,
                             {1, 2, 3, 4, 5, 6, 7, 8}));
    partition.push(makeStore(0x3002, 2, {0xaa, 0xbb}));

    FlushedPartition flushed = partition.flush(FlushReason::release);
    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);
    ASSERT_EQ(txn.size(), 1u);
    EXPECT_EQ(txn.subPackets()[0].data,
              (std::vector<std::uint8_t>{1, 2, 0xaa, 0xbb, 5, 6, 7, 8}));
}
