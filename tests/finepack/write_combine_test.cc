/** Unit tests for the cacheline write-combining baseline. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "finepack/write_combine.hh"

using namespace fp;
using namespace fp::finepack;
using fp::icn::Store;

namespace {

Store
makeStore(Addr addr, std::uint32_t size, GpuId dst = 1)
{
    return Store(addr, size, 0, dst);
}

} // namespace

TEST(WriteCombineTest, SameLineStoresMerge)
{
    WriteCombineBuffer wc(0, 1, 4, 128);
    EXPECT_FALSE(wc.push(makeStore(0x1000, 8)).has_value());
    EXPECT_FALSE(wc.push(makeStore(0x1010, 8)).has_value());
    EXPECT_EQ(wc.lineCount(), 1u);
    auto lines = wc.flushAll();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].entry.validBytes(), 16u);
    EXPECT_EQ(lines[0].folded, 2u);
}

TEST(WriteCombineTest, SameAddressOverwriteCountsElided)
{
    WriteCombineBuffer wc(0, 1, 4, 128);
    wc.push(makeStore(0x1000, 8));
    wc.push(makeStore(0x1000, 8));
    EXPECT_EQ(wc.bytesElided(), 8u);
    EXPECT_EQ(wc.storesPushed(), 2u);
}

TEST(WriteCombineTest, LruEvictionOnCapacity)
{
    WriteCombineBuffer wc(0, 1, 2, 128);
    wc.push(makeStore(0x1000, 8)); // line A
    wc.push(makeStore(0x2000, 8)); // line B
    wc.push(makeStore(0x1040, 8)); // hit A -> A becomes MRU
    auto evicted = wc.push(makeStore(0x3000, 8)); // evicts B (LRU)
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->entry.line_addr, 0x2000u);
    EXPECT_EQ(wc.lineCount(), 2u);
}

TEST(WriteCombineTest, FlushAllSortedAndEmpties)
{
    WriteCombineBuffer wc(0, 1, 8, 128);
    wc.push(makeStore(0x3000, 8));
    wc.push(makeStore(0x1000, 8));
    auto lines = wc.flushAll();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_LT(lines[0].entry.line_addr, lines[1].entry.line_addr);
    EXPECT_EQ(wc.lineCount(), 0u);
}

TEST(WriteCombineTest, LineMessageTransfersWholeLine)
{
    WriteCombineBuffer wc(0, 1, 4, 128);
    wc.push(makeStore(0x1000, 8));
    auto lines = wc.flushAll();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    auto msg = wc.lineToMessage(lines[0], protocol);

    EXPECT_EQ(msg->kind, icn::MessageKind::write_combine_line);
    // The whole 128 B line travels even though only 8 B were written -
    // the intra-line waste GPS suffers (Section VI-B).
    EXPECT_EQ(msg->payload_bytes, 128u);
    EXPECT_EQ(msg->data_bytes, 8u);
    EXPECT_EQ(msg->header_bytes, protocol.tlpOverhead());
}

TEST(WriteCombineTest, LineMessageDeliversOnlyWrittenRuns)
{
    WriteCombineBuffer wc(0, 1, 4, 128);
    Store a = makeStore(0x1000, 2);
    a.data = {1, 2};
    Store b = makeStore(0x1010, 2);
    b.data = {3, 4};
    wc.push(a);
    wc.push(b);
    auto lines = wc.flushAll();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    auto msg = wc.lineToMessage(lines[0], protocol);
    ASSERT_EQ(msg->stores.size(), 2u);
    EXPECT_EQ(msg->stores[0].addr, 0x1000u);
    EXPECT_EQ(msg->stores[0].data, (std::vector<std::uint8_t>{1, 2}));
    EXPECT_EQ(msg->stores[1].addr, 0x1010u);
    EXPECT_EQ(msg->stores[1].data, (std::vector<std::uint8_t>{3, 4}));
}

TEST(WriteCombineTest, WrongDestinationPanics)
{
    WriteCombineBuffer wc(0, 1, 4, 128);
    EXPECT_THROW(wc.push(makeStore(0x1000, 8, 2)), common::SimError);
}

TEST(WriteCombineTest, CrossLineStorePanics)
{
    WriteCombineBuffer wc(0, 1, 4, 128);
    EXPECT_THROW(wc.push(makeStore(0x1078, 16)), common::SimError);
}
