/** Unit tests for the packetizer, de-packetizer, and transaction format. */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"

using namespace fp;
using namespace fp::finepack;
using fp::icn::Store;

namespace {

Store
makeStore(Addr addr, std::uint32_t size,
          std::vector<std::uint8_t> data = {})
{
    Store store(addr, size, 0, 1);
    store.data = std::move(data);
    return store;
}

} // namespace

TEST(TransactionTest, AppendTracksPayloadAndData)
{
    FinePackConfig config = defaultConfig();
    FinePackTransaction txn(0, 1, 0x1000, config);
    EXPECT_TRUE(txn.empty());
    txn.append(0x1000, 8);
    txn.append(0x1100, 16);
    EXPECT_EQ(txn.size(), 2u);
    EXPECT_EQ(txn.dataBytes(), 24u);
    EXPECT_EQ(txn.rawPayloadBytes(), 24u + 2 * config.subheader_bytes);
    // Wire payload pads to a DW boundary.
    EXPECT_EQ(txn.wirePayloadBytes(),
              (txn.rawPayloadBytes() + 3) / 4 * 4);
}

TEST(TransactionTest, OffsetsRelativeToBase)
{
    FinePackTransaction txn(0, 1, 0x1000, defaultConfig());
    txn.append(0x1040, 8);
    EXPECT_EQ(txn.subPackets()[0].offset, 0x40u);
    EXPECT_EQ(txn.subPackets()[0].length, 8u);
}

TEST(TransactionTest, RejectsOutOfRangeSubPackets)
{
    FinePackConfig config = configWithSubheader(2); // 64 B range
    FinePackTransaction txn(0, 1, 0x1000, config);
    txn.append(0x1000, 8);
    EXPECT_THROW(txn.append(0x1000 + 64, 8), common::SimError);
    EXPECT_THROW(txn.append(0x1000 + 60, 8), common::SimError);
    EXPECT_THROW(txn.append(0x0fff, 1), common::SimError); // below base
}

TEST(TransactionTest, RejectsOversizedLength)
{
    FinePackConfig config = defaultConfig(); // 10-bit length field
    FinePackTransaction txn(0, 1, 0, config);
    EXPECT_THROW(txn.append(0, 1024), common::SimError);
    EXPECT_NO_THROW(txn.append(0, 1023));
}

TEST(TransactionTest, UnpackReconstructsStores)
{
    FinePackTransaction txn(0, 1, 0x1000, defaultConfig());
    txn.append(0x1008, 4, {1, 2, 3, 4});
    txn.append(0x1100, 2, {5, 6});
    auto stores = txn.unpack();
    ASSERT_EQ(stores.size(), 2u);
    EXPECT_EQ(stores[0].addr, 0x1008u);
    EXPECT_EQ(stores[0].size, 4u);
    EXPECT_EQ(stores[0].data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
    EXPECT_EQ(stores[1].addr, 0x1100u);
    EXPECT_EQ(stores[1].src, 0u);
    EXPECT_EQ(stores[1].dst, 1u);
}

TEST(PacketizerTest, OneSubPacketPerContiguousRun)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    // Two disjoint byte ranges in one line plus one other line.
    partition.push(makeStore(0x1000, 4));
    partition.push(makeStore(0x1010, 8));
    partition.push(makeStore(0x2000, 16));
    FlushedPartition flushed = partition.flush(FlushReason::release);

    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);
    // Sub-headers carry no byte enables, so each run is a sub-packet.
    EXPECT_EQ(txn.size(), 3u);
    EXPECT_EQ(txn.dataBytes(), 28u);
    EXPECT_EQ(packetizer.subPacketsEmitted(), 3u);
    EXPECT_EQ(packetizer.storesPacked(), 3u);
}

TEST(PacketizerTest, PayloadAccountingMatchesQueueBudget)
{
    // Whatever the queue accepted must fit one outer transaction.
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    Packetizer packetizer(0, config);
    icn::PcieProtocol protocol(icn::PcieGen::gen4);

    common::Rng rng(1234);
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.below(1 << 20);
        auto size = static_cast<std::uint32_t>(rng.range(1, 32));
        Addr line = addr & ~Addr{127};
        if (addr + size > line + 128)
            size = static_cast<std::uint32_t>(line + 128 - addr);
        auto flushed = partition.push(makeStore(addr, size));
        if (flushed) {
            auto msg = packetizer.toMessage(*flushed, protocol);
            EXPECT_LE(msg->payload_bytes, config.max_payload);
        }
    }
    FlushedPartition rest = partition.flush(FlushReason::release);
    if (!rest.empty()) {
        auto msg = packetizer.toMessage(rest, protocol);
        EXPECT_LE(msg->payload_bytes, config.max_payload);
    }
}

TEST(PacketizerTest, MessageCarriesByteSplit)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    partition.push(makeStore(0x1000, 8));
    partition.push(makeStore(0x3000, 8));
    FlushedPartition flushed = partition.flush(FlushReason::release);

    Packetizer packetizer(0, config);
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    auto msg = packetizer.toMessage(flushed, protocol);

    EXPECT_EQ(msg->kind, icn::MessageKind::finepack_packet);
    EXPECT_EQ(msg->data_bytes, 16u);
    EXPECT_EQ(msg->header_bytes, protocol.tlpOverhead());
    EXPECT_EQ(msg->payload_bytes,
              common::alignUp(16 + 2 * config.subheader_bytes, 4));
    EXPECT_EQ(msg->packed_store_count, 2u);
    EXPECT_EQ(msg->stores.size(), 2u);
}

TEST(PacketizerTest, AvgStoresPerPacketTracksFolding)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    Packetizer packetizer(0, config);

    // 10 program stores coalesce into one line (one packet).
    for (int i = 0; i < 10; ++i)
        partition.push(makeStore(0x1000, 8));
    FlushedPartition flushed = partition.flush(FlushReason::release);
    packetizer.packetize(flushed);
    EXPECT_DOUBLE_EQ(packetizer.avgStoresPerPacket(), 10.0);
    EXPECT_EQ(packetizer.packetsEmitted(), 1u);
}

TEST(PacketizerTest, EmptyFlushPanics)
{
    Packetizer packetizer(0, defaultConfig());
    FlushedPartition empty;
    EXPECT_THROW(packetizer.packetize(empty), common::SimError);
}

TEST(DePacketizerTest, RoundTripPreservesData)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    partition.push(
        makeStore(0x1000, 4, {0xde, 0xad, 0xbe, 0xef}));
    partition.push(makeStore(0x1020, 2, {0xca, 0xfe}));
    FlushedPartition flushed = partition.flush(FlushReason::release);

    Packetizer packetizer(0, config);
    FinePackTransaction txn = packetizer.packetize(flushed);

    DePacketizer depacketizer(config);
    auto stores = depacketizer.unpack(txn);
    ASSERT_EQ(stores.size(), 2u);
    EXPECT_EQ(stores[0].addr, 0x1000u);
    EXPECT_EQ(stores[0].data,
              (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
    EXPECT_EQ(stores[1].addr, 0x1020u);
    EXPECT_EQ(stores[1].data, (std::vector<std::uint8_t>{0xca, 0xfe}));
    EXPECT_EQ(depacketizer.storesUnpacked(), 2u);
}

TEST(DePacketizerTest, BufferSizeMatchesPaper)
{
    // Section IV-B: "a 64 entry buffer of 128B each".
    DePacketizer depacketizer(defaultConfig());
    EXPECT_EQ(depacketizer.bufferBytes(), 64u * 128);
}
