/** Unit tests for the remote write queue (paper Section IV-B, Fig. 8). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "finepack/remote_write_queue.hh"

using namespace fp;
using namespace fp::finepack;
using fp::icn::Store;

namespace {

Store
makeStore(Addr addr, std::uint32_t size, GpuId dst = 1)
{
    return Store(addr, size, 0, dst);
}

FinePackConfig
smallWindowConfig()
{
    // 3 B sub-header -> 14 offset bits -> 16 KiB window.
    return configWithSubheader(3);
}

} // namespace

TEST(RwqPartitionTest, InitialRegisterState)
{
    RwqPartition partition(1, defaultConfig());
    EXPECT_TRUE(partition.empty());
    // Paper: base address registers initialize to UINT64_MAX and the
    // available payload register to the maximum payload length.
    EXPECT_EQ(partition.baseAddrRegister(), invalid_addr);
    EXPECT_EQ(partition.availablePayload(), 4096u);
    EXPECT_EQ(partition.bufferedStores(), 0u);
}

TEST(RwqPartitionTest, FirstStoreSetsBaseRegister)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    Addr addr = 0x40001238;
    partition.push(makeStore(addr, 8));
    // Base register = address right-shifted by the offset width.
    EXPECT_EQ(partition.baseAddrRegister(), addr >> config.offsetBits());
    EXPECT_EQ(partition.windowLo(),
              (addr >> config.offsetBits()) << config.offsetBits());
    EXPECT_EQ(partition.windowHi(),
              partition.windowLo() + config.addressableRange());
}

TEST(RwqPartitionTest, PayloadRegisterDecrements)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    partition.push(makeStore(0x1000, 8));
    // One 8 B run costs 8 + 5 sub-header bytes.
    EXPECT_EQ(partition.availablePayload(), 4096u - 13u);
    partition.push(makeStore(0x2000, 16));
    EXPECT_EQ(partition.availablePayload(), 4096u - 13u - 21u);
}

TEST(RwqPartitionTest, SameAddressOverwritesInPlace)
{
    RwqPartition partition(1, defaultConfig());
    Store first = makeStore(0x1000, 8);
    first.data = {1, 2, 3, 4, 5, 6, 7, 8};
    Store second = makeStore(0x1000, 8);
    second.data = {9, 9, 9, 9, 9, 9, 9, 9};

    EXPECT_FALSE(partition.push(first).has_value());
    EXPECT_FALSE(partition.push(second).has_value());
    EXPECT_EQ(partition.entryCount(), 1u);
    EXPECT_EQ(partition.bytesElided(), 8u);
    EXPECT_EQ(partition.queueHits(), 1u);
    // Exact accounting: the merged store costs nothing extra.
    EXPECT_EQ(partition.availablePayload(), 4096u - 13u);

    FlushedPartition flushed = partition.flush(FlushReason::release);
    ASSERT_EQ(flushed.entries.size(), 1u);
    const QueueEntry &entry = flushed.entries[0];
    EXPECT_EQ(entry.line_addr, 0x1000u);
    EXPECT_EQ(entry.validBytes(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(entry.data[i], 9) << "byte " << i;
    EXPECT_EQ(flushed.packed_store_count, 2u);
}

TEST(RwqPartitionTest, ByteMasksOrTogether)
{
    RwqPartition partition(1, defaultConfig());
    partition.push(makeStore(0x1000, 4));
    partition.push(makeStore(0x1008, 4));
    EXPECT_EQ(partition.entryCount(), 1u); // same 128 B line
    FlushedPartition flushed = partition.flush(FlushReason::release);
    const QueueEntry &entry = flushed.entries[0];
    EXPECT_TRUE(entry.mask.test(0));
    EXPECT_TRUE(entry.mask.test(3));
    EXPECT_FALSE(entry.mask.test(4));
    EXPECT_TRUE(entry.mask.test(8));
    EXPECT_EQ(entry.runs().size(), 2u);
}

TEST(RwqPartitionTest, AdjacentStoresMergeRunsAndReclaimBudget)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    partition.push(makeStore(0x1000, 4));
    partition.push(makeStore(0x1008, 4));
    std::uint64_t before = partition.availablePayload();
    // Fill the gap: two runs merge into one, so the entry's exact
    // packed cost changes by (+4 data - 1 sub-header) and the register
    // reclaims the difference.
    partition.push(makeStore(0x1004, 4));
    std::uint64_t after = partition.availablePayload();
    EXPECT_EQ(after, before + config.subheader_bytes - 4);

    FlushedPartition flushed = partition.flush(FlushReason::release);
    EXPECT_EQ(flushed.entries[0].runs().size(), 1u);
    EXPECT_EQ(flushed.entries[0].validBytes(), 12u);
}

TEST(RwqPartitionTest, WindowViolationFlushes)
{
    FinePackConfig config = smallWindowConfig(); // 16 KiB window
    RwqPartition partition(1, config);
    partition.push(makeStore(0x4000, 8));
    // An address outside [window_lo, window_hi) flushes.
    auto flushed = partition.push(makeStore(0x4000 + 64 * KiB, 8));
    ASSERT_TRUE(flushed.has_value());
    EXPECT_EQ(flushed->entries.size(), 1u);
    EXPECT_EQ(flushed->packed_store_count, 1u);
    EXPECT_EQ(partition.flushes(FlushReason::window_violation), 1u);
    // The incoming store seeded the new window.
    EXPECT_FALSE(partition.empty());
    EXPECT_EQ(partition.baseAddrRegister(),
              (0x4000 + 64 * KiB) >> config.offsetBits());
}

TEST(RwqPartitionTest, StoreStraddlingWindowGridSplits)
{
    // Only the 2-byte sub-header geometry (64 B window, smaller than a
    // cache line) lets a line-contained store cross a window boundary;
    // the queue must split it so each piece fits its window.
    FinePackConfig config = configWithSubheader(2);
    RwqPartition partition(1, config);
    std::vector<FlushedPartition> sink;
    partition.push(makeStore(60, 8), sink); // crosses byte 64
    // The head piece [60, 64) seeded window [0, 64) and was flushed by
    // the tail piece [64, 68) violating it.
    ASSERT_EQ(sink.size(), 1u);
    ASSERT_EQ(sink[0].entries.size(), 1u);
    EXPECT_EQ(sink[0].entries[0].validBytes(), 4u);
    EXPECT_TRUE(sink[0].entries[0].mask.test(60));
    EXPECT_FALSE(sink[0].entries[0].mask.test(64));
    // The tail piece is now buffered in window [64, 128).
    EXPECT_FALSE(partition.empty());
    EXPECT_EQ(partition.windowLo(), 64u);
    FlushedPartition rest = partition.flush(FlushReason::release);
    ASSERT_EQ(rest.entries.size(), 1u);
    EXPECT_EQ(rest.entries[0].validBytes(), 4u);
    EXPECT_TRUE(rest.entries[0].mask.test(64));
}

TEST(RwqPartitionTest, SplitPreservesDataBytes)
{
    FinePackConfig config = configWithSubheader(2);
    RwqPartition partition(1, config);
    Store store = makeStore(62, 4);
    store.data = {10, 11, 12, 13};
    std::vector<FlushedPartition> sink;
    partition.push(store, sink);
    ASSERT_EQ(sink.size(), 1u);
    const QueueEntry &head = sink[0].entries[0];
    EXPECT_EQ(head.data[62], 10);
    EXPECT_EQ(head.data[63], 11);
    FlushedPartition rest = partition.flush(FlushReason::release);
    const QueueEntry &tail = rest.entries[0];
    EXPECT_EQ(tail.data[64], 12);
    EXPECT_EQ(tail.data[65], 13);
}

TEST(RwqPartitionTest, PayloadBudgetFlushes)
{
    FinePackConfig config = defaultConfig();
    config.queue_entries = 1024; // entry capacity never binds here
    RwqPartition partition(1, config);

    // Full-line stores cost 133 B each; 30 fit in 4096 (3990), the
    // 31st does not.
    std::uint32_t fits = 4096 / (128 + config.subheader_bytes);
    for (std::uint32_t i = 0; i < fits; ++i) {
        auto flushed = partition.push(makeStore(i * 128, 128));
        EXPECT_FALSE(flushed.has_value()) << "store " << i;
    }
    auto flushed = partition.push(makeStore(fits * 128, 128));
    ASSERT_TRUE(flushed.has_value());
    EXPECT_EQ(flushed->entries.size(), fits);
    EXPECT_EQ(partition.flushes(FlushReason::payload_full), 1u);
}

TEST(RwqPartitionTest, EntryCapacityFlushes)
{
    FinePackConfig config = defaultConfig(); // 64 entries
    RwqPartition partition(1, config);
    // 64 distinct lines of small stores stay under the payload cap.
    for (std::uint32_t i = 0; i < 64; ++i)
        EXPECT_FALSE(partition.push(makeStore(i * 128, 8)).has_value());
    EXPECT_EQ(partition.entryCount(), 64u);
    // A 65th line misses with no free entry.
    auto flushed = partition.push(makeStore(64 * 128, 8));
    ASSERT_TRUE(flushed.has_value());
    EXPECT_EQ(flushed->entries.size(), 64u);
    EXPECT_EQ(partition.flushes(FlushReason::entries_full), 1u);
    EXPECT_EQ(partition.entryCount(), 1u);
}

TEST(RwqPartitionTest, HitOnFullQueueDoesNotFlush)
{
    FinePackConfig config = defaultConfig();
    RwqPartition partition(1, config);
    for (std::uint32_t i = 0; i < 64; ++i)
        partition.push(makeStore(i * 128, 8));
    // A hit on an existing line needs no new entry.
    EXPECT_FALSE(partition.push(makeStore(0, 8)).has_value());
    EXPECT_EQ(partition.entryCount(), 64u);
}

TEST(RwqPartitionTest, FlushResetsRegisters)
{
    RwqPartition partition(1, defaultConfig());
    partition.push(makeStore(0x1000, 8));
    partition.flush(FlushReason::release);
    EXPECT_TRUE(partition.empty());
    EXPECT_EQ(partition.baseAddrRegister(), invalid_addr);
    EXPECT_EQ(partition.availablePayload(), 4096u);
    EXPECT_EQ(partition.bufferedStores(), 0u);
}

TEST(RwqPartitionTest, FlushEmptyIsEmptyResult)
{
    RwqPartition partition(1, defaultConfig());
    FlushedPartition flushed = partition.flush(FlushReason::release);
    EXPECT_TRUE(flushed.empty());
    EXPECT_EQ(partition.flushes(FlushReason::release), 0u);
}

TEST(RwqPartitionTest, FlushedEntriesSortedByAddress)
{
    RwqPartition partition(1, defaultConfig());
    partition.push(makeStore(0x3000, 8));
    partition.push(makeStore(0x1000, 8));
    partition.push(makeStore(0x2000, 8));
    FlushedPartition flushed = partition.flush(FlushReason::release);
    ASSERT_EQ(flushed.entries.size(), 3u);
    EXPECT_LT(flushed.entries[0].line_addr, flushed.entries[1].line_addr);
    EXPECT_LT(flushed.entries[1].line_addr, flushed.entries[2].line_addr);
}

TEST(RwqPartitionTest, LoadConflictFlushes)
{
    RwqPartition partition(1, defaultConfig());
    partition.push(makeStore(0x1000, 8));
    partition.push(makeStore(0x2000, 8));
    // A load to an untouched address does not flush.
    EXPECT_FALSE(
        partition.flushIfConflict(0x3000, 8, FlushReason::load_conflict)
            .has_value());
    // A load overlapping a buffered store flushes the whole partition
    // (like a synchronization would).
    auto flushed = partition.flushIfConflict(0x1004, 2,
                                             FlushReason::load_conflict);
    ASSERT_TRUE(flushed.has_value());
    EXPECT_EQ(flushed->entries.size(), 2u);
    EXPECT_TRUE(partition.empty());
}

TEST(RwqPartitionTest, LoadToSameLineButDisjointBytesNoFlush)
{
    RwqPartition partition(1, defaultConfig());
    partition.push(makeStore(0x1000, 8));
    // Same 128 B line, non-overlapping bytes: no ordering hazard.
    EXPECT_FALSE(
        partition.flushIfConflict(0x1040, 8, FlushReason::load_conflict)
            .has_value());
}

TEST(RwqPartitionTest, CrossLineStorePanics)
{
    RwqPartition partition(1, defaultConfig());
    EXPECT_THROW(partition.push(makeStore(0x1078, 16)),
                 common::SimError);
}

TEST(RwqPartitionTest, AtomicStorePanics)
{
    RwqPartition partition(1, defaultConfig());
    Store atomic = makeStore(0x1000, 8);
    atomic.is_atomic = true;
    EXPECT_THROW(partition.push(atomic), common::SimError);
}

TEST(RemoteWriteQueueTest, RoutesToPartitionByDestination)
{
    RemoteWriteQueue rwq(0, 4, defaultConfig());
    rwq.push(makeStore(0x1000, 8, 1));
    rwq.push(makeStore(0x2000, 8, 2));
    rwq.push(makeStore(0x3000, 8, 3));
    EXPECT_EQ(rwq.partition(1).entryCount(), 1u);
    EXPECT_EQ(rwq.partition(2).entryCount(), 1u);
    EXPECT_EQ(rwq.partition(3).entryCount(), 1u);
}

TEST(RemoteWriteQueueTest, PartitionsCoalesceIndependently)
{
    // The same address to two destinations must not interfere.
    RemoteWriteQueue rwq(0, 4, defaultConfig());
    rwq.push(makeStore(0x1000, 8, 1));
    rwq.push(makeStore(0x1000, 8, 2));
    EXPECT_EQ(rwq.partition(1).bufferedStores(), 1u);
    EXPECT_EQ(rwq.partition(2).bufferedStores(), 1u);
    EXPECT_EQ(rwq.partition(1).queueHits(), 0u);
}

TEST(RemoteWriteQueueTest, FlushAllReturnsNonEmptyPartitions)
{
    RemoteWriteQueue rwq(0, 4, defaultConfig());
    rwq.push(makeStore(0x1000, 8, 1));
    rwq.push(makeStore(0x2000, 8, 3));
    auto flushed = rwq.flushAll(FlushReason::release);
    EXPECT_EQ(flushed.size(), 2u);
    EXPECT_TRUE(rwq.partition(1).empty());
    EXPECT_TRUE(rwq.partition(3).empty());
}

TEST(RemoteWriteQueueTest, SelfPartitionRejected)
{
    RemoteWriteQueue rwq(0, 4, defaultConfig());
    EXPECT_THROW(rwq.push(makeStore(0x1000, 8, 0)), common::SimError);
    EXPECT_THROW(rwq.partition(0), common::SimError);
}

TEST(RemoteWriteQueueTest, SramFootprintMatchesTableIII)
{
    RemoteWriteQueue rwq(0, 4, defaultConfig());
    // 3 peers x 64 entries x 128 B = 24 KiB of line data per GPU.
    EXPECT_EQ(rwq.totalSramBytes(), 3u * 64 * 128);
}

TEST(QueueEntryTest, RunExtraction)
{
    QueueEntry entry;
    entry.line_addr = 0;
    entry.data.assign(128, 0);
    entry.mask.set(0);
    entry.mask.set(1);
    entry.mask.set(5);
    entry.mask.set(127);
    auto runs = entry.runs();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0], std::make_pair(0u, 2u));
    EXPECT_EQ(runs[1], std::make_pair(5u, 1u));
    EXPECT_EQ(runs[2], std::make_pair(127u, 1u));
}

TEST(QueueEntryTest, PackedCostCountsSubheaderPerRun)
{
    FinePackConfig config = defaultConfig();
    QueueEntry entry;
    entry.data.assign(128, 0);
    for (int i = 0; i < 8; i += 2)
        entry.mask.set(i * 4); // 4 isolated bytes
    EXPECT_EQ(entry.packedCost(config), 4 * (config.subheader_bytes + 1));
}

TEST(FlushReasonTest, ToStringCoversAll)
{
    EXPECT_STREQ(toString(FlushReason::window_violation),
                 "window-violation");
    EXPECT_STREQ(toString(FlushReason::payload_full), "payload-full");
    EXPECT_STREQ(toString(FlushReason::entries_full), "entries-full");
    EXPECT_STREQ(toString(FlushReason::release), "release");
    EXPECT_STREQ(toString(FlushReason::load_conflict), "load-conflict");
    EXPECT_STREQ(toString(FlushReason::atomic_conflict),
                 "atomic-conflict");
}
