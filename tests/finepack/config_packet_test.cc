/** Unit tests for the stateful config-packet alternative (Sec. VI-B). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "finepack/config_packet.hh"

using namespace fp;
using namespace fp::finepack;

TEST(ConfigPacketTest, PerStoreLinkBytesDominateForBursts)
{
    FinePackConfig config = defaultConfig();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    ConfigPacketModel model(config, protocol);

    // The config-packet design never amortizes away the per-store
    // sequence number and CRC (10 B the FinePack sub-packet saves), so
    // for any real burst it stays behind - and the gap grows.
    EXPECT_GT(model.wireBytes(8, 8), model.finePackWireBytes(8, 8));
    std::uint64_t gap32 =
        model.wireBytes(32, 8) - model.finePackWireBytes(32, 8);
    std::uint64_t gap200 =
        model.wireBytes(200, 8) - model.finePackWireBytes(200, 8);
    EXPECT_GT(gap200, gap32);
}

TEST(ConfigPacketTest, PaperEighteenPercentFigure)
{
    // Section VI-B: "For a packet containing 32-64 stores (FinePack
    // typically coalesces 42...), this alternate design is
    // approximately 18% less efficient."
    FinePackConfig config = defaultConfig();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    ConfigPacketModel model(config, protocol);

    // At the paper's effective store granularity (~48 B coalesced line
    // runs), the 10 extra link-level bytes per store cost ~18%.
    double at42 = model.relativeInefficiency(42, 48);
    EXPECT_GT(at42, 0.12);
    EXPECT_LT(at42, 0.26);

    double lo = model.relativeInefficiency(32, 48);
    double hi = model.relativeInefficiency(64, 48);
    EXPECT_GT(lo, 0.10);
    EXPECT_LT(hi, 0.30);
}

TEST(ConfigPacketTest, InefficiencyShrinksWithStoreSize)
{
    // Larger payloads amortize the per-store link overhead.
    FinePackConfig config = defaultConfig();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    ConfigPacketModel model(config, protocol);
    EXPECT_GT(model.relativeInefficiency(32, 8),
              model.relativeInefficiency(32, 64));
}

TEST(ConfigPacketTest, BurstTooBigForOneTransactionPanics)
{
    FinePackConfig config = defaultConfig();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    ConfigPacketModel model(config, protocol);
    // 4096 B payload cap: 300 stores of 16 B cannot fit one packet.
    EXPECT_THROW(model.finePackWireBytes(300, 16), common::SimError);
}

TEST(ConfigPacketTest, ZeroStoresPanics)
{
    FinePackConfig config = defaultConfig();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    ConfigPacketModel model(config, protocol);
    EXPECT_THROW(model.wireBytes(0, 8), common::SimError);
}
