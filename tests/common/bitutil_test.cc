/** Unit tests for bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

using namespace fp::common;

TEST(BitUtilTest, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(128));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(BitUtilTest, AlignDown)
{
    EXPECT_EQ(alignDown(0, 128), 0u);
    EXPECT_EQ(alignDown(127, 128), 0u);
    EXPECT_EQ(alignDown(128, 128), 128u);
    EXPECT_EQ(alignDown(300, 128), 256u);
}

TEST(BitUtilTest, AlignUp)
{
    EXPECT_EQ(alignUp(0, 4), 0u);
    EXPECT_EQ(alignUp(1, 4), 4u);
    EXPECT_EQ(alignUp(4, 4), 4u);
    EXPECT_EQ(alignUp(4093, 4), 4096u);
}

TEST(BitUtilTest, RoundUpToArbitraryUnit)
{
    EXPECT_EQ(roundUpTo(0, 3), 0u);
    EXPECT_EQ(roundUpTo(1, 3), 3u);
    EXPECT_EQ(roundUpTo(9, 3), 9u);
    EXPECT_EQ(roundUpTo(10, 3), 12u);
}

TEST(BitUtilTest, DivCeil)
{
    EXPECT_EQ(divCeil(0, 5), 0u);
    EXPECT_EQ(divCeil(1, 5), 1u);
    EXPECT_EQ(divCeil(5, 5), 1u);
    EXPECT_EQ(divCeil(6, 5), 2u);
    EXPECT_EQ(divCeil(4096, 4096), 1u);
    EXPECT_EQ(divCeil(4097, 4096), 2u);
}

TEST(BitUtilTest, BitsFor)
{
    EXPECT_EQ(bitsFor(0), 0u);
    EXPECT_EQ(bitsFor(1), 0u);
    EXPECT_EQ(bitsFor(2), 1u);
    EXPECT_EQ(bitsFor(3), 2u);
    EXPECT_EQ(bitsFor(256), 8u);
    EXPECT_EQ(bitsFor(257), 9u);
}

TEST(BitUtilTest, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xff00, 7, 0), 0x00ull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
    EXPECT_EQ(bits(0b1010, 3, 1), 0b101ull);
}

TEST(BitUtilTest, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffull);
    EXPECT_EQ(mask(64), ~0ull);
    // The FinePack sub-header offset widths (Table II).
    EXPECT_EQ(mask(6) + 1, 64u);            // 2 B sub-header -> 64 B
    EXPECT_EQ(mask(14) + 1, 16u * 1024);    // 3 B -> 16 KB
    EXPECT_EQ(mask(22) + 1, 4u * 1024 * 1024); // 4 B -> 4 MB
    EXPECT_EQ(mask(30) + 1, 1ull << 30);    // 5 B -> 1 GB
    EXPECT_EQ(mask(38) + 1, 1ull << 38);    // 6 B -> 256 GB
}
