/**
 * @file
 * Positive twin of sync_compile_fail.cc: the same guarded access with
 * the lock held must compile cleanly under -Werror=thread-safety,
 * proving the negative check fails because of the analysis and not an
 * unrelated build problem.
 */

#include "common/sync.h"

namespace {

class Counter
{
  public:
    void
    bump()
    {
        fp::MutexLock lock(_mu);
        ++_value;
    }

  private:
    fp::Mutex _mu;
    int _value FP_GUARDED_BY(_mu) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.bump();
    return 0;
}
