/** Unit tests for panic/fatal/assert behaviour. */

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace fp::common;

TEST(LoggingTest, PanicThrowsWithMessage)
{
    try {
        fp_panic("bad thing ", 42);
        FAIL() << "panic did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::Panic);
        EXPECT_NE(std::string(e.what()).find("bad thing 42"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("logging_test"),
                  std::string::npos);
    }
}

TEST(LoggingTest, FatalThrowsWithKind)
{
    try {
        fp_fatal("user error");
        FAIL() << "fatal did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::Fatal);
        EXPECT_NE(std::string(e.what()).find("fatal"),
                  std::string::npos);
    }
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(fp_assert(1 + 1 == 2, "math works"));
}

TEST(LoggingTest, AssertThrowsOnFalse)
{
    try {
        fp_assert(1 == 2, "value was ", 2);
        FAIL() << "assert did not throw";
    } catch (const SimError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("value was 2"), std::string::npos);
    }
}

TEST(LoggingTest, ExceptionsToggleIsQueryable)
{
    EXPECT_TRUE(exceptionsEnabled());
    setExceptionsEnabled(true);
    EXPECT_TRUE(exceptionsEnabled());
}

TEST(LoggingTest, WarnAndInformDoNotThrow)
{
    setQuiet(true);
    EXPECT_NO_THROW(fp_warn("warning ", 1));
    EXPECT_NO_THROW(fp_inform("status ", 2));
    setQuiet(false);
}
