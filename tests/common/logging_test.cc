/** Unit tests for panic/fatal/assert behaviour. */

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

#include "common/logging.hh"

using namespace fp::common;

namespace {

/** Redirect a stream into a buffer for the lifetime of the guard. */
class CaptureStream
{
  public:
    explicit CaptureStream(std::ostream &os)
        : _os(os), _previous(os.rdbuf(_buffer.rdbuf()))
    {}

    ~CaptureStream() { _os.rdbuf(_previous); }

    std::string text() const { return _buffer.str(); }

  private:
    std::ostream &_os;
    std::ostringstream _buffer;
    std::streambuf *_previous;
};

} // namespace

TEST(LoggingTest, PanicThrowsWithMessage)
{
    try {
        fp_panic("bad thing ", 42);
        FAIL() << "panic did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::Panic);
        EXPECT_NE(std::string(e.what()).find("bad thing 42"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("logging_test"),
                  std::string::npos);
    }
}

TEST(LoggingTest, FatalThrowsWithKind)
{
    try {
        fp_fatal("user error");
        FAIL() << "fatal did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimError::Kind::Fatal);
        EXPECT_NE(std::string(e.what()).find("fatal"),
                  std::string::npos);
    }
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(fp_assert(1 + 1 == 2, "math works"));
}

TEST(LoggingTest, AssertThrowsOnFalse)
{
    try {
        fp_assert(1 == 2, "value was ", 2);
        FAIL() << "assert did not throw";
    } catch (const SimError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("value was 2"), std::string::npos);
    }
}

TEST(LoggingTest, ExceptionsToggleIsQueryable)
{
    EXPECT_TRUE(exceptionsEnabled());
    setExceptionsEnabled(true);
    EXPECT_TRUE(exceptionsEnabled());
}

TEST(LoggingTest, WarnAndInformDoNotThrow)
{
    setQuiet(true);
    EXPECT_NO_THROW(fp_warn("warning ", 1));
    EXPECT_NO_THROW(fp_inform("status ", 2));
    setQuiet(false);
}

TEST(LoggingTest, WarnCarriesTickPrefixWhileContextActive)
{
    ScopedTickContext context([]() { return std::uint64_t{12345}; });
    CaptureStream cerr_capture(std::cerr);
    fp_warn("queue overflow");
    std::string text = cerr_capture.text();
    EXPECT_NE(text.find("warn:"), std::string::npos) << text;
    EXPECT_NE(text.find("[tick 12345]"), std::string::npos) << text;
    EXPECT_NE(text.find("queue overflow"), std::string::npos) << text;
}

TEST(LoggingTest, InformCarriesTickPrefixWhileContextActive)
{
    ScopedTickContext context([]() { return std::uint64_t{77}; });
    CaptureStream cout_capture(std::cout);
    fp_inform("phase done");
    std::string text = cout_capture.text();
    EXPECT_NE(text.find("info: [tick 77] phase done"), std::string::npos)
        << text;
}

TEST(LoggingTest, NoTickPrefixWithoutContext)
{
    CaptureStream cerr_capture(std::cerr);
    fp_warn("plain message");
    std::string text = cerr_capture.text();
    EXPECT_NE(text.find("warn: plain message"), std::string::npos) << text;
    EXPECT_EQ(text.find("[tick"), std::string::npos) << text;
}

TEST(LoggingTest, NestedTickContextsRestoreOuterSource)
{
    ScopedTickContext outer([]() { return std::uint64_t{1}; });
    {
        ScopedTickContext inner([]() { return std::uint64_t{2}; });
        CaptureStream cerr_capture(std::cerr);
        fp_warn("inner");
        EXPECT_NE(cerr_capture.text().find("[tick 2]"), std::string::npos);
    }
    CaptureStream cerr_capture(std::cerr);
    fp_warn("outer");
    EXPECT_NE(cerr_capture.text().find("[tick 1]"), std::string::npos);
}
