/** Unit tests for the discrete-event simulation core. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/logging.hh"

using namespace fp;
using fp::common::Event;
using fp::common::EventQueue;

namespace {

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id, int priority =
                       Event::prio_default)
        : Event(priority), _log(log), _id(id)
    {}

    void process() override { _log.push_back(_id); }

  private:
    std::vector<int> &_log;
    int _id;
};

} // namespace

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_EQ(queue.nextEventTick(), max_tick);
    EXPECT_FALSE(queue.step());
}

TEST(EventQueueTest, RunOnEmptyQueueTerminates)
{
    EventQueue queue;
    EXPECT_EQ(queue.run(), 0u);
    EXPECT_EQ(queue.run(max_tick), 0u);
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    queue.schedule(&c, 300);
    queue.schedule(&a, 100);
    queue.schedule(&b, 200);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 300u);
}

TEST(EventQueueTest, SameTickOrdersByPriorityThenInsertion)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent low(log, 1, Event::prio_stat);
    RecordingEvent high(log, 2, Event::prio_arrival);
    RecordingEvent first(log, 3, Event::prio_default);
    RecordingEvent second(log, 4, Event::prio_default);
    queue.schedule(&low, 50);
    queue.schedule(&first, 50);
    queue.schedule(&second, 50);
    queue.schedule(&high, 50);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{2, 3, 4, 1}));
}

TEST(EventQueueTest, LambdaEventsRun)
{
    EventQueue queue;
    int count = 0;
    queue.schedule([&]() { ++count; }, 10);
    queue.scheduleIn([&]() { ++count; }, 20);
    queue.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(queue.now(), 20u);
}

TEST(EventQueueTest, EventsScheduleMoreEvents)
{
    EventQueue queue;
    std::vector<Tick> ticks;
    std::function<void()> chain = [&]() {
        ticks.push_back(queue.now());
        if (ticks.size() < 5)
            queue.scheduleIn(chain, 10);
    };
    queue.schedule(chain, 0);
    queue.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{0, 10, 20, 30, 40}));
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    queue.schedule(&a, 10);
    queue.schedule(&b, 20);
    a.cancel();
    EXPECT_FALSE(a.scheduled());
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueueTest, CancelledQueueIsEmpty)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    queue.schedule(&a, 10);
    a.cancel();
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    queue.schedule(&a, 100);
    queue.schedule(&b, 50);
    queue.reschedule(&a, 10); // move earlier
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(queue.eventsProcessed(), 2u);
}

TEST(EventQueueTest, RescheduleUnscheduledActsAsSchedule)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    queue.reschedule(&a, 5);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueueTest, CancelThenRescheduleRunsOnce)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    queue.schedule(&a, 10);
    a.cancel();
    queue.reschedule(&a, 30);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueueTest, RunWithLimitStopsBeforeLaterEvents)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    queue.schedule(&a, 10);
    queue.schedule(&b, 100);
    queue.run(50);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(queue.empty());
    EXPECT_EQ(queue.nextEventTick(), 100u);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, SchedulingInThePastPanics)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    queue.schedule([]() {}, 100);
    queue.run();
    EXPECT_THROW(queue.schedule(&a, 50), common::SimError);
}

TEST(EventQueueTest, DoubleSchedulePanics)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    queue.schedule(&a, 10);
    EXPECT_THROW(queue.schedule(&a, 20), common::SimError);
}

TEST(EventQueueTest, ManyLambdasGarbageCollected)
{
    EventQueue queue;
    std::uint64_t count = 0;
    for (int i = 0; i < 20000; ++i)
        queue.schedule([&count]() { ++count; },
                       static_cast<Tick>(i));
    queue.run();
    EXPECT_EQ(count, 20000u);
    EXPECT_EQ(queue.eventsProcessed(), 20000u);
}

TEST(EventQueueTest, RunCompletionReclaimsOwnedLambdas)
{
    // Regression: executed queue-owned lambdas must be reclaimed when
    // run() completes, not only past the amortized GC threshold -
    // otherwise a long replay (many run() cycles of a few hundred
    // events each) grows _owned without bound.
    EventQueue queue;
    std::uint64_t count = 0;
    for (int cycle = 0; cycle < 200; ++cycle) {
        for (int i = 0; i < 100; ++i)
            queue.scheduleIn([&count]() { ++count; },
                             static_cast<Tick>(i + 1));
        queue.run();
        EXPECT_EQ(queue.ownedPending(), 0u)
            << "ownership records leaked after cycle " << cycle;
    }
    EXPECT_EQ(count, 20000u);
}

TEST(EventQueueTest, RunWithLimitKeepsPendingOwnedLambdas)
{
    // The completion sweep must not reclaim lambdas that are still
    // scheduled past the run limit.
    EventQueue queue;
    int count = 0;
    queue.schedule([&]() { ++count; }, 10);
    queue.schedule([&]() { ++count; }, 100);
    queue.run(50);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(queue.ownedPending(), 1u);
    queue.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(queue.ownedPending(), 0u);
}

TEST(EventQueueTest, CancelThenReschedulePrunesStaleEntry)
{
    // Cancel + reschedule leaves a stale heap entry at the old tick;
    // it must be pruned (by sequence mismatch), not executed, and must
    // not surface through nextEventTick().
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    queue.schedule(&a, 10);
    a.cancel();
    queue.reschedule(&a, 30);
    EXPECT_EQ(queue.nextEventTick(), 30u);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(queue.eventsProcessed(), 1u);
}

TEST(EventQueueTest, PriorityTieBreakAcrossAllLevels)
{
    // All five Priority levels at one tick, inserted in reverse, with
    // two events per level: levels order by value, ties by insertion.
    EventQueue queue;
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    const int priorities[] = {Event::prio_stat, Event::prio_sync,
                              Event::prio_inject, Event::prio_default,
                              Event::prio_arrival};
    for (int round = 0; round < 2; ++round) {
        for (int priority : priorities) {
            events.push_back(std::make_unique<RecordingEvent>(
                log, priority * 10 + round, priority));
            queue.schedule(events.back().get(), 5);
        }
    }
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 100, 101, 200, 201, 300, 301,
                                     1000, 1001}));
}

TEST(EventQueueTest, NextEventTickAfterMassCancellation)
{
    EventQueue queue;
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    for (int i = 0; i < 100; ++i) {
        events.push_back(std::make_unique<RecordingEvent>(log, i));
        queue.schedule(events.back().get(), 10 + i);
    }
    for (auto &event : events)
        event->cancel();
    EXPECT_EQ(queue.nextEventTick(), max_tick);
    EXPECT_TRUE(queue.empty());
    // A survivor behind the cancelled block is still found.
    RecordingEvent last(log, 999);
    queue.schedule(&last, 500);
    EXPECT_EQ(queue.nextEventTick(), 500u);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{999}));
    EXPECT_EQ(queue.eventsProcessed(), 1u);
}

TEST(EventQueueTest, TieBreakShuffleIsReproduciblePerSeed)
{
    auto run_once = [](std::uint64_t seed) {
        EventQueue queue;
        queue.enableTieBreakShuffle(seed);
        std::vector<int> log;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < 64; ++i) {
            events.push_back(std::make_unique<RecordingEvent>(log, i));
            queue.schedule(events.back().get(), 7);
        }
        queue.run();
        return log;
    };
    EXPECT_EQ(run_once(1), run_once(1));
    EXPECT_EQ(run_once(2), run_once(2));
    // Different seeds permute 64 ties differently (equal permutations
    // would need a 1-in-64! collision).
    EXPECT_NE(run_once(1), run_once(2));
    // And every seed yields some permutation of the same events.
    auto sorted = run_once(3);
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> expected(64);
    for (int i = 0; i < 64; ++i)
        expected[i] = i;
    EXPECT_EQ(sorted, expected);
}

TEST(EventQueueTest, TieBreakShufflePreservesTickAndPriorityOrder)
{
    EventQueue queue;
    queue.enableTieBreakShuffle(99);
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    // ids encode (tick, priority) rank: shuffle may only permute
    // within one (tick, priority) group, never across groups.
    for (int tick = 1; tick <= 3; ++tick) {
        for (int priority :
             {Event::prio_arrival, Event::prio_inject}) {
            for (int i = 0; i < 4; ++i) {
                events.push_back(std::make_unique<RecordingEvent>(
                    log, tick * 100 + priority, priority));
                queue.schedule(events.back().get(),
                               static_cast<Tick>(tick));
            }
        }
    }
    queue.run();
    ASSERT_EQ(log.size(), 24u);
    EXPECT_TRUE(std::is_sorted(log.begin(), log.end()));
}

TEST(EventQueueTest, TieBreakModeChangeRequiresEmptyQueue)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    queue.schedule(&a, 10);
    EXPECT_THROW(queue.enableTieBreakShuffle(1), common::SimError);
    queue.run();
    queue.enableTieBreakShuffle(1);
    RecordingEvent b(log, 2);
    queue.schedule(&b, 20);
    EXPECT_THROW(queue.disableTieBreakShuffle(), common::SimError);
    queue.run();
    queue.disableTieBreakShuffle();
    EXPECT_FALSE(queue.tieBreakShuffleEnabled());
}

TEST(EventQueueTest, TieBreakIsDeterministicAcrossRuns)
{
    auto run_once = [&]() {
        EventQueue queue;
        std::vector<int> log;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < 64; ++i) {
            events.push_back(
                std::make_unique<RecordingEvent>(log, i));
            queue.schedule(events.back().get(), 7);
        }
        queue.run();
        return log;
    };
    EXPECT_EQ(run_once(), run_once());
}
