/**
 * @file
 * Negative compile check (Clang only; built by the WILL_FAIL ctest
 * SyncAnnotations.UnlockedAccessFailsToCompile): writing an
 * FP_GUARDED_BY member without holding its mutex MUST be rejected by
 * -Werror=thread-safety. This is the teeth behind every annotation in
 * the tree -- sync_compile_pass.cc is the identical code with the lock
 * held, proving the failure below is the analysis and not a build
 * problem.
 */

#include "common/sync.h"

namespace {

class Counter
{
  public:
    void
    bump()
    {
        ++_value; // error: writing _value requires holding _mu
    }

  private:
    fp::Mutex _mu;
    int _value FP_GUARDED_BY(_mu) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.bump();
    return 0;
}
