/**
 * Determinism tests for the event queue: same-tick events mixing
 * arrival/inject/sync priorities and lambda events must execute in the
 * same order on every run - the property the whole simulator's
 * reproducibility (and the protocol oracle's causal replay) rests on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/random.hh"

using namespace fp;
using common::Event;
using common::EventQueue;

namespace {

/** A derived event that appends its label to a shared journal. */
class JournalEvent : public Event
{
  public:
    JournalEvent(std::vector<std::string> &journal, std::string label,
                 int priority)
        : Event(priority), _journal(journal), _label(std::move(label))
    {}

    void process() override { _journal.push_back(_label); }
    const char *description() const override { return _label.c_str(); }

  private:
    std::vector<std::string> &_journal;
    std::string _label;
};

/**
 * Build one run's execution journal: a deterministic but shuffled-looking
 * schedule of same-tick events mixing priorities, derived events, and
 * lambda events. Insertion order is fixed by @p seed, so two runs with
 * the same seed must journal identically.
 */
std::vector<std::string>
journalOneRun(std::uint64_t seed)
{
    EventQueue queue;
    std::vector<std::string> journal;
    std::vector<std::unique_ptr<JournalEvent>> events;
    common::Rng rng(seed);

    const std::vector<std::pair<const char *, int>> kinds = {
        {"arrival", Event::prio_arrival},
        {"default", Event::prio_default},
        {"inject", Event::prio_inject},
        {"sync", Event::prio_sync},
        {"stat", Event::prio_stat},
    };

    for (int i = 0; i < 200; ++i) {
        const auto &[kind, priority] = kinds[rng.below(kinds.size())];
        Tick when = 100 * rng.range(1, 5); // heavy same-tick collisions
        std::string label = std::string(kind) + "@" +
                            std::to_string(when) + "#" + std::to_string(i);
        if (rng.below(2) == 0) {
            // Queue-owned lambda event.
            queue.schedule([&journal, label]() { journal.push_back(label); },
                           when, priority);
        } else {
            events.push_back(std::make_unique<JournalEvent>(
                journal, label, priority));
            queue.schedule(events.back().get(), when);
        }
    }
    queue.run();
    return journal;
}

} // namespace

TEST(EventQueueDeterminismTest, SameTickPrioritiesExecuteInOrder)
{
    EventQueue queue;
    std::vector<std::string> journal;
    std::vector<std::unique_ptr<JournalEvent>> events;

    // Insert in deliberately scrambled priority order, all at tick 50.
    for (int priority : {Event::prio_stat, Event::prio_arrival,
                         Event::prio_sync, Event::prio_default,
                         Event::prio_inject}) {
        events.push_back(std::make_unique<JournalEvent>(
            journal, std::to_string(priority), priority));
        queue.schedule(events.back().get(), 50);
    }
    queue.run();

    EXPECT_EQ(journal, (std::vector<std::string>{"0", "10", "20", "30",
                                                 "100"}));
}

TEST(EventQueueDeterminismTest, SamePriorityTiesBreakByInsertion)
{
    EventQueue queue;
    std::vector<std::string> journal;

    // Lambda events at the same (tick, priority): FIFO by insertion.
    for (int i = 0; i < 8; ++i) {
        queue.schedule([&journal, i]() {
            journal.push_back(std::to_string(i));
        }, 10, Event::prio_inject);
    }
    queue.run();

    ASSERT_EQ(journal.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(journal[i], std::to_string(i));
}

TEST(EventQueueDeterminismTest, MixedLambdaAndDerivedEventsInterleave)
{
    // A lambda and a derived event at the same (tick, priority) order by
    // insertion sequence, not by event kind.
    EventQueue queue;
    std::vector<std::string> journal;

    JournalEvent derived(journal, "derived", Event::prio_default);
    queue.schedule([&journal]() { journal.push_back("lambda-1"); }, 20);
    queue.schedule(&derived, 20);
    queue.schedule([&journal]() { journal.push_back("lambda-2"); }, 20);
    queue.run();

    EXPECT_EQ(journal, (std::vector<std::string>{"lambda-1", "derived",
                                                 "lambda-2"}));
}

TEST(EventQueueDeterminismTest, IdenticalScheduleJournalsIdentically)
{
    // The satellite requirement: a mixed-priority same-tick workload is
    // bit-identical across runs.
    for (std::uint64_t seed : {1ull, 42ull, 12345ull}) {
        auto first = journalOneRun(seed);
        auto second = journalOneRun(seed);
        ASSERT_EQ(first.size(), 200u);
        EXPECT_EQ(first, second) << "divergent journal for seed " << seed;
    }
}

TEST(EventQueueDeterminismTest, RescheduleDoesNotPerturbOtherEvents)
{
    EventQueue queue;
    std::vector<std::string> journal;

    JournalEvent movable(journal, "moved", Event::prio_arrival);
    JournalEvent stable(journal, "stable", Event::prio_arrival);
    queue.schedule(&movable, 10);
    queue.schedule(&stable, 10);
    // Rescheduling re-enqueues with a fresh sequence number: the moved
    // event now executes after the stable one despite equal priority.
    queue.reschedule(&movable, 10);
    queue.run();

    EXPECT_EQ(journal, (std::vector<std::string>{"stable", "moved"}));
}
