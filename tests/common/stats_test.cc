/** Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

using namespace fp::common;

TEST(ScalarTest, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 5.0;
    ++s;
    s -= 2.0;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AverageTest, ComputesMean)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(DistributionTest, BucketsSamples)
{
    Distribution d;
    d.init(0.0, 100.0, 10);
    d.sample(5.0);   // bucket 0
    d.sample(15.0);  // bucket 1
    d.sample(95.0);  // bucket 9
    d.sample(-1.0);  // underflow
    d.sample(100.0); // overflow (hi is exclusive)
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[9], 1u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
}

TEST(DistributionTest, WeightedSamples)
{
    Distribution d;
    d.init(0.0, 10.0, 2);
    d.sample(1.0, 3);
    d.sample(7.0, 2);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.buckets()[0], 3u);
    EXPECT_EQ(d.buckets()[1], 2u);
    EXPECT_NEAR(d.mean(), (1.0 * 3 + 7.0 * 2) / 5.0, 1e-12);
}

TEST(DistributionTest, VarianceMatchesHandComputation)
{
    Distribution d;
    d.init(0.0, 10.0, 10);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    // Known population variance of this data set is 4.
    EXPECT_NEAR(d.variance(), 4.0, 1e-9);
    EXPECT_NEAR(d.mean(), 5.0, 1e-12);
}

TEST(DistributionTest, EmptyDistributionHasZeroMoments)
{
    Distribution d;
    d.init(0.0, 10.0, 4);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(DistributionTest, SingleSampleHasZeroVariance)
{
    Distribution d;
    d.init(0.0, 10.0, 4);
    d.sample(7.5);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 7.5);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 7.5);
    EXPECT_DOUBLE_EQ(d.max(), 7.5);
}

TEST(DistributionTest, MinMaxTrackFirstSampleNotZero)
{
    // The first sample must seed min/max; a distribution whose values
    // are all above zero must not report min() == 0.
    Distribution d;
    d.init(0.0, 100.0, 10);
    d.sample(42.0);
    d.sample(50.0);
    EXPECT_DOUBLE_EQ(d.min(), 42.0);
    EXPECT_DOUBLE_EQ(d.max(), 50.0);
}

TEST(DistributionTest, ResetClearsEverything)
{
    Distribution d;
    d.init(0.0, 10.0, 5);
    d.sample(3.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(HistogramTest, ExplicitEdges)
{
    Histogram h;
    h.init({0.0, 5.0, 9.0, 17.0, 33.0, 65.0});
    h.sample(4.0);   // [0,5)
    h.sample(8.0);   // [5,9)
    h.sample(16.0);  // [9,17)
    h.sample(32.0);  // [17,33)
    h.sample(64.0);  // [33,65)
    h.sample(128.0); // [65,inf)
    EXPECT_EQ(h.total(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(h.counts()[i], 1u) << "bucket " << i;
    EXPECT_NEAR(h.fraction(0), 1.0 / 6.0, 1e-12);
}

TEST(HistogramTest, EdgeValuesLandInUpperBucket)
{
    Histogram h;
    h.init({0.0, 10.0});
    h.sample(10.0);
    EXPECT_EQ(h.counts()[1], 1u);
    h.sample(9.999);
    EXPECT_EQ(h.counts()[0], 1u);
}

TEST(HistogramTest, BelowFirstEdgeClampsToBucketZero)
{
    Histogram h;
    h.init({5.0, 10.0});
    h.sample(1.0);
    EXPECT_EQ(h.counts()[0], 1u);
}

TEST(StatGroupTest, RegistersAndLooksUp)
{
    StatGroup group("gpu0");
    Scalar s;
    Average a;
    s += 42.0;
    a.sample(3.0);
    group.registerScalar("stores", &s, "stores issued");
    group.registerAverage("size", &a, "avg size");
    EXPECT_DOUBLE_EQ(group.scalarValue("stores"), 42.0);
    EXPECT_DOUBLE_EQ(group.averageValue("size"), 3.0);
    EXPECT_TRUE(group.hasScalar("stores"));
    EXPECT_FALSE(group.hasScalar("missing"));
}

TEST(StatGroupTest, UnknownStatPanics)
{
    StatGroup group("g");
    EXPECT_THROW(group.scalarValue("nope"), fp::common::SimError);
}

TEST(StatGroupTest, DuplicateRegistrationPanics)
{
    StatGroup group("g");
    Scalar s;
    group.registerScalar("x", &s);
    EXPECT_THROW(group.registerScalar("x", &s), fp::common::SimError);
}

TEST(StatGroupTest, DumpContainsNamesAndValues)
{
    StatGroup group("link0");
    Scalar s;
    s.set(7.0);
    group.registerScalar("bytes", &s, "wire bytes");
    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("link0.bytes"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("wire bytes"), std::string::npos);
}

TEST(StatGroupTest, DuplicateHistogramRegistrationPanics)
{
    StatGroup group("g");
    Histogram h;
    h.init({0.0, 1.0});
    group.registerHistogram("sizes", &h);
    EXPECT_THROW(group.registerHistogram("sizes", &h),
                 fp::common::SimError);
}

TEST(StatGroupTest, DumpRendersHistogramBuckets)
{
    StatGroup group("egress");
    Histogram h;
    h.init({1.0, 4.0, 16.0});
    h.sample(2.0);
    h.sample(8.0);
    h.sample(8.0);
    group.registerHistogram("store_size", &h, "store sizes");
    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("egress.store_size.total"), std::string::npos);
    EXPECT_NE(text.find("store_size[1]"), std::string::npos);
    EXPECT_NE(text.find("store_size[4]"), std::string::npos);
    EXPECT_NE(text.find("store_size[16]"), std::string::npos);
    EXPECT_NE(text.find("store sizes"), std::string::npos);
}

TEST(StatGroupTest, DumpRendersDistributionSummary)
{
    StatGroup group("rwq");
    Distribution d;
    d.init(0.0, 64.0, 8);
    d.sample(16.0);
    group.registerDistribution("occupancy", &d, "window occupancy");
    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("rwq.occupancy.mean"), std::string::npos);
    EXPECT_NE(text.find("rwq.occupancy.count"), std::string::npos);
}
