/**
 * @file
 * EventQueue observer dispatch: the multi-observer hook list, the
 * no-observer fast path's hook counts, access-observer routing, and
 * the always-on operation counters the self-profiler reads.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/event_queue.hh"

namespace {

using fp::Tick;
using fp::common::AccessRecorder;
using fp::common::Event;
using fp::common::EventQueue;
using fp::common::EventQueueObserver;

/** Counts every hook invocation; optionally consumes accesses. */
class CountingObserver : public EventQueueObserver
{
  public:
    explicit CountingObserver(bool wants_accesses = false)
        : _wants_accesses(wants_accesses)
    {}

    void beginEvent(const Event &event) override
    {
        ++begins;
        labels.push_back(event.description());
    }

    void endEvent(const Event &) override { ++ends; }

    void
    recordAccess(const void *, const char *label, bool is_write) override
    {
        ++accesses;
        access_labels.push_back(std::string(label) +
                                (is_write ? ":w" : ":r"));
    }

    bool wantsAccesses() const override { return _wants_accesses; }

    int begins = 0;
    int ends = 0;
    int accesses = 0;
    std::vector<std::string> labels;
    std::vector<std::string> access_labels;

  private:
    bool _wants_accesses;
};

TEST(EventQueueObserver, NoObserverMeansNoDispatch)
{
    EventQueue queue;
    EXPECT_FALSE(queue.observed());
    EXPECT_EQ(queue.observer(), nullptr);

    int ran = 0;
    queue.schedule([&ran]() { ++ran; }, 10);
    queue.run();
    EXPECT_EQ(ran, 1);
    // Still nothing attached after running - the fast path is the
    // steady state, not a transient.
    EXPECT_FALSE(queue.observed());
}

TEST(EventQueueObserver, SingleObserverSeesEveryEvent)
{
    EventQueue queue;
    CountingObserver obs;
    queue.addObserver(&obs);
    EXPECT_TRUE(queue.observed());

    queue.schedule([]() {}, 1, Event::prio_default, "first");
    queue.schedule([]() {}, 2, Event::prio_default, "second");
    queue.run();

    EXPECT_EQ(obs.begins, 2);
    EXPECT_EQ(obs.ends, 2);
    ASSERT_EQ(obs.labels.size(), 2u);
    EXPECT_EQ(obs.labels[0], "first");
    EXPECT_EQ(obs.labels[1], "second");
}

TEST(EventQueueObserver, TwoObserversBothDispatched)
{
    EventQueue queue;
    CountingObserver a, b;
    queue.addObserver(&a);
    queue.addObserver(&b);

    queue.schedule([]() {}, 5);
    queue.run();
    EXPECT_EQ(a.begins, 1);
    EXPECT_EQ(b.begins, 1);
    EXPECT_EQ(a.ends, 1);
    EXPECT_EQ(b.ends, 1);
}

TEST(EventQueueObserver, RemoveRestoresFastPath)
{
    EventQueue queue;
    CountingObserver obs;
    queue.addObserver(&obs);
    queue.schedule([]() {}, 1);
    queue.run();
    EXPECT_EQ(obs.begins, 1);

    queue.removeObserver(&obs);
    EXPECT_FALSE(queue.observed());
    queue.schedule([]() {}, 2);
    queue.run();
    // No hooks after detach: the count is frozen.
    EXPECT_EQ(obs.begins, 1);
    EXPECT_EQ(obs.ends, 1);
}

TEST(EventQueueObserver, LegacySetObserverReplacesList)
{
    EventQueue queue;
    CountingObserver a, b;
    queue.addObserver(&a);
    queue.setObserver(&b); // replaces, not appends
    queue.schedule([]() {}, 1);
    queue.run();
    EXPECT_EQ(a.begins, 0);
    EXPECT_EQ(b.begins, 1);

    queue.setObserver(nullptr); // detaches everything
    EXPECT_FALSE(queue.observed());
}

TEST(EventQueueObserver, AccessRoutingSkipsExecutionOnlyObservers)
{
    EventQueue queue;
    CountingObserver profiler_like(/*wants_accesses=*/false);
    queue.addObserver(&profiler_like);
    // An execution-only observer must leave access recording inert:
    // AccessRecorder sees a null observer and component code keeps its
    // single-branch fast path (this is what keeps profiled runs
    // digest-identical to unprofiled ones).
    EXPECT_EQ(queue.observer(), nullptr);
    AccessRecorder inert(queue);
    EXPECT_FALSE(inert.active());
    inert.write(&queue, "resource");
    EXPECT_EQ(profiler_like.accesses, 0);

    CountingObserver detector_like(/*wants_accesses=*/true);
    queue.addObserver(&detector_like);
    EXPECT_EQ(queue.observer(), &detector_like);
    AccessRecorder active(queue);
    EXPECT_TRUE(active.active());
    active.write(&queue, "resource");
    active.read(&queue, "resource");
    EXPECT_EQ(detector_like.accesses, 2);
    EXPECT_EQ(detector_like.access_labels[0], "resource:w");
    EXPECT_EQ(detector_like.access_labels[1], "resource:r");
    // The execution-only observer never saw a declaration.
    EXPECT_EQ(profiler_like.accesses, 0);

    // Removing the access consumer restores the inert routing even
    // though an observer is still attached.
    queue.removeObserver(&detector_like);
    EXPECT_TRUE(queue.observed());
    EXPECT_EQ(queue.observer(), nullptr);
}

TEST(EventQueueObserver, OperationCountersTrackQueueChurn)
{
    EventQueue queue;
    EXPECT_EQ(queue.eventsScheduled(), 0u);
    EXPECT_EQ(queue.eventsProcessed(), 0u);
    EXPECT_EQ(queue.staleDrops(), 0u);
    EXPECT_EQ(queue.peakDepth(), 0u);

    queue.schedule([]() {}, 10);
    queue.schedule([]() {}, 20);
    queue.schedule([]() {}, 30);
    EXPECT_EQ(queue.eventsScheduled(), 3u);
    EXPECT_EQ(queue.peakDepth(), 3u);

    queue.run();
    EXPECT_EQ(queue.eventsProcessed(), 3u);
    // Depth high-water mark survives the drain.
    EXPECT_EQ(queue.peakDepth(), 3u);
    EXPECT_EQ(queue.staleDrops(), 0u);
}

TEST(EventQueueObserver, StaleDropsCountCancelledEntries)
{
    EventQueue queue;
    fp::common::LambdaEvent cancelled([]() { FAIL(); },
                                      Event::prio_default, "cancelled");
    fp::common::LambdaEvent moved([]() {}, Event::prio_default, "moved");
    queue.schedule(&cancelled, 10);
    queue.schedule(&moved, 20);
    cancelled.cancel();
    queue.reschedule(&moved, 40); // leaves one stale heap entry
    queue.run();
    // One stale entry each from the cancel and the reschedule.
    EXPECT_EQ(queue.staleDrops(), 2u);
    EXPECT_EQ(queue.eventsProcessed(), 1u);
}

TEST(EventQueueObserver, LabeledLambdaEventsReportTheirLabel)
{
    EventQueue queue;
    CountingObserver obs;
    queue.addObserver(&obs);
    queue.scheduleIn([]() {}, 5, Event::prio_default, "my.label");
    queue.scheduleIn([]() {}, 6); // default label
    queue.run();
    ASSERT_EQ(obs.labels.size(), 2u);
    EXPECT_EQ(obs.labels[0], "my.label");
    EXPECT_EQ(obs.labels[1], "lambda event");
}

} // namespace
