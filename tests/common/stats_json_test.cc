/**
 * Golden-schema tests for StatGroup::dumpJson and the process-wide
 * MetricsRegistry: the JSON layout is a contract with external tooling
 * (docs/observability.md), so these tests pin it down.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"
#include "../support/mini_json.hh"

using namespace fp::common;
using fp::testing::JsonValue;
using fp::testing::parseJson;

namespace {

std::string
dumpGroup(const StatGroup &group)
{
    std::ostringstream os;
    JsonWriter json(os);
    group.dumpJson(json);
    return os.str();
}

} // namespace

TEST(StatsJsonTest, EmptyGroupStillEmitsAllSections)
{
    StatGroup group("empty");
    auto doc = parseJson(dumpGroup(group));
    EXPECT_EQ(doc.at("name").string, "empty");
    EXPECT_TRUE(doc.at("scalars").isObject());
    EXPECT_TRUE(doc.at("averages").isObject());
    EXPECT_TRUE(doc.at("distributions").isObject());
    EXPECT_TRUE(doc.at("histograms").isObject());
}

TEST(StatsJsonTest, ScalarSchema)
{
    StatGroup group("link");
    Scalar bytes;
    bytes.set(1536.0);
    group.registerScalar("wire_bytes", &bytes, "bytes on the wire");
    auto doc = parseJson(dumpGroup(group));
    const JsonValue &s = doc.at("scalars").at("wire_bytes");
    EXPECT_DOUBLE_EQ(s.at("value").number, 1536.0);
    EXPECT_EQ(s.at("desc").string, "bytes on the wire");
}

TEST(StatsJsonTest, AverageSchema)
{
    StatGroup group("egress");
    Average avg;
    avg.sample(10.0);
    avg.sample(20.0);
    group.registerAverage("stores_per_message", &avg);
    auto doc = parseJson(dumpGroup(group));
    const JsonValue &a = doc.at("averages").at("stores_per_message");
    EXPECT_DOUBLE_EQ(a.at("mean").number, 15.0);
    EXPECT_DOUBLE_EQ(a.at("sum").number, 30.0);
    EXPECT_DOUBLE_EQ(a.at("count").number, 2.0);
    // desc was omitted at registration, so the member must be absent.
    EXPECT_FALSE(a.has("desc"));
}

TEST(StatsJsonTest, DistributionSchema)
{
    StatGroup group("rwq");
    Distribution d;
    d.init(0.0, 8.0, 4);
    d.sample(1.0);
    d.sample(3.0);
    d.sample(9.0); // overflow
    group.registerDistribution("occupancy", &d, "entries per window");
    auto doc = parseJson(dumpGroup(group));
    const JsonValue &dist = doc.at("distributions").at("occupancy");
    EXPECT_DOUBLE_EQ(dist.at("count").number, 3.0);
    EXPECT_DOUBLE_EQ(dist.at("min").number, 1.0);
    EXPECT_DOUBLE_EQ(dist.at("max").number, 9.0);
    EXPECT_DOUBLE_EQ(dist.at("overflow").number, 1.0);
    EXPECT_DOUBLE_EQ(dist.at("underflow").number, 0.0);
    ASSERT_EQ(dist.at("buckets").array.size(), 4u);
    ASSERT_EQ(dist.at("bucket_lo").array.size(), 4u);
    EXPECT_DOUBLE_EQ(dist.at("bucket_lo").array[1].number, 2.0);
    EXPECT_DOUBLE_EQ(dist.at("buckets").array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(dist.at("buckets").array[1].number, 1.0);
    EXPECT_EQ(dist.at("desc").string, "entries per window");
}

TEST(StatsJsonTest, HistogramSchema)
{
    StatGroup group("egress");
    Histogram h;
    h.init({1.0, 4.0, 16.0, 64.0});
    h.sample(2.0);
    h.sample(8.0);
    h.sample(8.0);
    h.sample(128.0);
    group.registerHistogram("store_size_bytes", &h, "store sizes");
    auto doc = parseJson(dumpGroup(group));
    const JsonValue &hist = doc.at("histograms").at("store_size_bytes");
    EXPECT_DOUBLE_EQ(hist.at("total").number, 4.0);
    ASSERT_EQ(hist.at("edges").array.size(), 4u);
    ASSERT_EQ(hist.at("counts").array.size(), 4u);
    EXPECT_DOUBLE_EQ(hist.at("edges").array[2].number, 16.0);
    EXPECT_DOUBLE_EQ(hist.at("counts").array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(hist.at("counts").array[1].number, 2.0);
    EXPECT_DOUBLE_EQ(hist.at("counts").array[3].number, 1.0);
    EXPECT_DOUBLE_EQ(hist.at("min").number, 2.0);
    EXPECT_DOUBLE_EQ(hist.at("max").number, 128.0);
    // Percentiles interpolate within the bucket, clamped to the
    // observed [min, max].
    for (const char *key : {"p50", "p90", "p95", "p99"}) {
        ASSERT_TRUE(hist.has(key)) << key;
        EXPECT_GE(hist.at(key).number, 2.0) << key;
        EXPECT_LE(hist.at(key).number, 128.0) << key;
    }
    EXPECT_LE(hist.at("p50").number, hist.at("p90").number);
    EXPECT_LE(hist.at("p90").number, hist.at("p95").number);
    EXPECT_LE(hist.at("p95").number, hist.at("p99").number);
    EXPECT_EQ(hist.at("desc").string, "store sizes");
}

TEST(StatsJsonTest, HistogramPercentiles)
{
    Histogram h;
    h.init({0.0, 10.0, 100.0});
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // empty -> 0

    for (int i = 0; i < 100; ++i)
        h.sample(5.0);
    // All samples in one bucket: every percentile collapses to the
    // single observed value.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 5.0);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);

    h.reset();
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    for (int i = 0; i < 90; ++i)
        h.sample(5.0);
    for (int i = 0; i < 10; ++i)
        h.sample(50.0);
    // p50 falls in the first bucket, p99 in the second; ordering and
    // clamping must hold.
    EXPECT_LE(h.percentile(0.5), 10.0);
    EXPECT_GE(h.percentile(0.99), 10.0);
    EXPECT_LE(h.percentile(0.99), 50.0);
    EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
}

TEST(StatsJsonTest, RegistryTracksGroupLifetime)
{
    auto initial = MetricsRegistry::instance().groups().size();
    {
        StatGroup group("transient");
        const auto &groups = MetricsRegistry::instance().groups();
        ASSERT_EQ(groups.size(), initial + 1);
        EXPECT_EQ(groups.back()->name(), "transient");
    }
    EXPECT_EQ(MetricsRegistry::instance().groups().size(), initial);
}

TEST(StatsJsonTest, RegistryDumpIsOneArrayInRegistrationOrder)
{
    auto initial = MetricsRegistry::instance().groups().size();
    StatGroup first("alpha");
    StatGroup second("beta");
    Scalar s;
    s.set(3.0);
    second.registerScalar("x", &s);

    std::ostringstream os;
    JsonWriter json(os);
    MetricsRegistry::instance().dumpJson(json);
    auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.isArray());
    ASSERT_EQ(doc.array.size(), initial + 2);
    EXPECT_EQ(doc.array[initial].at("name").string, "alpha");
    EXPECT_EQ(doc.array[initial + 1].at("name").string, "beta");
    EXPECT_DOUBLE_EQ(doc.array[initial + 1]
                         .at("scalars").at("x").at("value").number,
                     3.0);
}
