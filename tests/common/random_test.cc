/** Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/random.hh"

using namespace fp::common;

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowZeroPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.below(0), SimError);
}

TEST(RngTest, RangeInclusiveBounds)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values appear
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng rng(13);
    std::uint64_t counts[8] = {};
    const int trials = 80000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.below(8)];
    for (auto c : counts) {
        EXPECT_GT(c, trials / 8 * 0.9);
        EXPECT_LT(c, trials / 8 * 1.1);
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}
