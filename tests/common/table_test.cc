/** Unit tests for the ASCII table renderer. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

using namespace fp::common;

TEST(TableTest, RendersHeaderAndRows)
{
    Table t("My Title");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    std::ostringstream os;
    t.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("My Title"), std::string::npos);
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
}

TEST(TableTest, MismatchedRowWidthPanics)
{
    Table t("x");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), SimError);
}

TEST(TableTest, EmptyHeaderPanics)
{
    Table t("x");
    EXPECT_THROW(t.setHeader({}), SimError);
}

TEST(TableTest, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(0.5, 3), "0.500");
}

TEST(TableTest, ColumnsAlignToWidestCell)
{
    Table t("t");
    t.setHeader({"c"});
    t.addRow({"wide-cell-content"});
    t.addRow({"x"});
    std::ostringstream os;
    t.print(os);
    // Every data row has the same length.
    std::string text = os.str();
    std::istringstream lines(text);
    std::string line;
    std::size_t width = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("| ", 0) == 0) {
            if (width == 0)
                width = line.size();
            EXPECT_EQ(line.size(), width);
        }
    }
    EXPECT_GT(width, 0u);
}
