/**
 * Unit tests for the annotated sync primitives and the thread pool
 * (common/sync.h): mutual exclusion under contention, condition
 * signaling, inline serial execution, index coverage, exception
 * propagation, and pool reuse. These carry the "threadsafe" ctest
 * label so the TSan preset exercises exactly this surface.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/sync.h"

using namespace fp;

TEST(MutexTest, TryLockReflectsOwnership)
{
    Mutex mu;
    ASSERT_TRUE(mu.try_lock());
    EXPECT_FALSE(mu.try_lock());
    mu.unlock();
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
}

TEST(MutexTest, GuardsCounterUnderContention)
{
    Mutex mu;
    long counter = 0;
    constexpr long per_job = 10000;

    ThreadPool pool(4);
    pool.parallelFor(8, [&](std::size_t) {
        for (long i = 0; i < per_job; ++i) {
            MutexLock lock(mu);
            ++counter;
        }
    });
    EXPECT_EQ(counter, 8 * per_job);
}

TEST(CondVarTest, WaitWakesOnPredicate)
{
    Mutex mu;
    CondVar cv;
    bool ready = false;
    bool observed = false;

    // Lane 0 waits for the flag, lane 1 sets it: regardless of which
    // lane runs first, the waiter must wake and see ready == true.
    ThreadPool pool(2);
    pool.parallelFor(2, [&](std::size_t i) {
        if (i == 0) {
            MutexLock lock(mu);
            while (!ready)
                cv.wait(mu);
            observed = true;
        } else {
            {
                MutexLock lock(mu);
                ready = true;
            }
            cv.notify_one();
        }
    });
    EXPECT_TRUE(observed);
}

TEST(ThreadPoolTest, SizeClampsToAtLeastOneLane)
{
    EXPECT_EQ(ThreadPool(0).size(), 1u);
    EXPECT_EQ(ThreadPool(1).size(), 1u);
    EXPECT_EQ(ThreadPool(3).size(), 3u);
}

TEST(ThreadPoolTest, SerialPoolRunsInIndexOrderInline)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce)
{
    constexpr std::size_t n = 100;
    ThreadPool pool(4);
    std::vector<int> hits(n, 0);
    // Each index writes only its own slot, so no lock is needed and
    // any double-execution or skip shows up as a wrong count.
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ExceptionIsRethrownAfterBatchDrains)
{
    constexpr std::size_t n = 32;
    ThreadPool pool(4);
    Mutex mu;
    std::size_t completed = 0;
    EXPECT_THROW(
        pool.parallelFor(n,
                         [&](std::size_t i) {
                             if (i == 7)
                                 throw std::runtime_error("job 7");
                             MutexLock lock(mu);
                             ++completed;
                         }),
        std::runtime_error);
    // The failing index aborts only itself; the rest of the batch
    // still ran to completion before the rethrow.
    EXPECT_EQ(completed, n - 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::vector<int> hits(10, 0);
        pool.parallelFor(10, [&](std::size_t i) { ++hits[i]; });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10)
            << "round " << round;
    }
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(
                     4, [](std::size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
    std::vector<int> hits(4, 0);
    pool.parallelFor(4, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
}
