/** Unit tests for the streaming JSON writer. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "../support/mini_json.hh"

using namespace fp::common;
using fp::testing::parseJson;

namespace {

/** Run @p body against a fresh writer and return the rendered text. */
template <typename Fn>
std::string
render(Fn &&body)
{
    std::ostringstream os;
    JsonWriter json(os);
    body(json);
    return os.str();
}

} // namespace

TEST(JsonWriterTest, EmptyObjectAndArray)
{
    EXPECT_EQ(render([](JsonWriter &j) {
        j.beginObject();
        j.endObject();
    }), "{}");
    EXPECT_EQ(render([](JsonWriter &j) {
        j.beginArray();
        j.endArray();
    }), "[]");
}

TEST(JsonWriterTest, CommasBetweenMembersAndElements)
{
    std::string text = render([](JsonWriter &j) {
        j.beginObject();
        j.kv("a", 1);
        j.kv("b", 2);
        j.key("c");
        j.beginArray();
        j.value(1);
        j.value(2);
        j.value(3);
        j.endArray();
        j.endObject();
    });
    EXPECT_EQ(text, R"({"a":1,"b":2,"c":[1,2,3]})");
    auto doc = parseJson(text);
    EXPECT_EQ(doc.at("c").array.size(), 3u);
}

TEST(JsonWriterTest, StringEscaping)
{
    std::string text = render([](JsonWriter &j) {
        j.beginObject();
        j.kv("k", std::string("a\"b\\c\nd\te"));
        j.endObject();
    });
    auto doc = parseJson(text);
    EXPECT_EQ(doc.at("k").string, "a\"b\\c\nd\te");
}

TEST(JsonWriterTest, ControlCharactersEscapeAsUnicode)
{
    std::string text = render([](JsonWriter &j) {
        j.beginObject();
        j.kv("k", std::string("x\x01y"));
        j.endObject();
    });
    EXPECT_NE(text.find("\\u0001"), std::string::npos) << text;
    auto doc = parseJson(text);
    EXPECT_EQ(doc.at("k").string, "x\x01y");
}

TEST(JsonWriterTest, NonFiniteDoublesSerializeAsNull)
{
    std::string text = render([](JsonWriter &j) {
        j.beginArray();
        j.value(std::numeric_limits<double>::quiet_NaN());
        j.value(std::numeric_limits<double>::infinity());
        j.value(-std::numeric_limits<double>::infinity());
        j.endArray();
    });
    auto doc = parseJson(text);
    ASSERT_EQ(doc.array.size(), 3u);
    for (const auto &v : doc.array)
        EXPECT_TRUE(v.isNull());
}

TEST(JsonWriterTest, IntegralDoublesHaveNoFraction)
{
    // Counters are doubles internally but must round-trip as integers
    // so downstream tools can compare them exactly.
    std::string text = render([](JsonWriter &j) {
        j.beginArray();
        j.value(42.0);
        j.value(0.5);
        j.endArray();
    });
    EXPECT_NE(text.find("42"), std::string::npos) << text;
    EXPECT_EQ(text.find("42.0"), std::string::npos) << text;
    auto doc = parseJson(text);
    EXPECT_DOUBLE_EQ(doc.array[0].number, 42.0);
    EXPECT_DOUBLE_EQ(doc.array[1].number, 0.5);
}

TEST(JsonWriterTest, HugeDoublesKeepPrecisionViaScientific)
{
    std::string text = render([](JsonWriter &j) {
        j.beginArray();
        j.value(1.0e18);
        j.endArray();
    });
    auto doc = parseJson(text);
    EXPECT_NEAR(doc.array[0].number, 1.0e18, 1.0e9);
}

TEST(JsonWriterTest, BooleansAndNull)
{
    std::string text = render([](JsonWriter &j) {
        j.beginObject();
        j.kv("t", true);
        j.kv("f", false);
        j.key("n");
        j.null();
        j.endObject();
    });
    EXPECT_EQ(text, R"({"t":true,"f":false,"n":null})");
}

TEST(JsonWriterTest, CompleteTracksScopeBalance)
{
    std::ostringstream os;
    JsonWriter json(os);
    EXPECT_FALSE(json.complete());
    json.beginObject();
    EXPECT_FALSE(json.complete());
    json.endObject();
    EXPECT_TRUE(json.complete());
}

TEST(JsonWriterTest, ValueInObjectWithoutKeyPanics)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    EXPECT_THROW(json.value(1), fp::common::SimError);
}

TEST(JsonWriterTest, NestedDocumentRoundTrips)
{
    std::string text = render([](JsonWriter &j) {
        j.beginObject();
        j.key("groups");
        j.beginArray();
        for (int g = 0; g < 3; ++g) {
            j.beginObject();
            j.kv("id", g);
            j.kv("label", "gpu" + std::to_string(g));
            j.endObject();
        }
        j.endArray();
        j.endObject();
    });
    auto doc = parseJson(text);
    ASSERT_EQ(doc.at("groups").array.size(), 3u);
    EXPECT_EQ(doc.at("groups").array[2].at("label").string, "gpu2");
    EXPECT_DOUBLE_EQ(doc.at("groups").array[1].at("id").number, 1.0);
}
