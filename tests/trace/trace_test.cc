/** Unit tests for trace structures, intervals, and serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "gpu/warp_coalescer.hh"
#include "trace/store_stream.hh"
#include "trace/trace.hh"

using namespace fp;
using namespace fp::trace;

TEST(IntervalSetTest, MergesOverlapsAndAdjacency)
{
    IntervalSet set;
    set.add(0, 10);
    set.add(5, 10);  // overlap
    set.add(15, 5);  // adjacent
    set.add(100, 1); // disjoint
    EXPECT_EQ(set.totalBytes(), 21u);
    EXPECT_EQ(set.intervalCount(), 2u);
}

TEST(IntervalSetTest, ContainsQueries)
{
    IntervalSet set;
    set.add(10, 10);
    EXPECT_TRUE(set.contains(10));
    EXPECT_TRUE(set.contains(19));
    EXPECT_FALSE(set.contains(20));
    EXPECT_FALSE(set.contains(9));
    EXPECT_FALSE(set.contains(0));
}

TEST(IntervalSetTest, IntersectionBytes)
{
    IntervalSet a, b;
    a.add(0, 100);
    a.add(200, 50);
    b.add(50, 100); // overlaps [50,100) of the first span
    b.add(240, 100); // overlaps [240,250) of the second
    EXPECT_EQ(a.intersectBytes(b), 50u + 10u);
    // Symmetric.
    EXPECT_EQ(b.intersectBytes(a), 60u);
}

TEST(IntervalSetTest, EmptySetBehaviour)
{
    IntervalSet a, b;
    EXPECT_EQ(a.totalBytes(), 0u);
    EXPECT_EQ(a.intersectBytes(b), 0u);
    EXPECT_FALSE(a.contains(0));
    a.add(0, 0); // zero-size add is a no-op
    EXPECT_EQ(a.totalBytes(), 0u);
}

TEST(UpdateSummaryTest, UniqueAndUsefulBytes)
{
    IterationWork iter;
    iter.per_gpu.resize(2);
    iter.consumed.resize(2);
    // GPU 0 stores to GPU 1: two overlapping 8 B stores + one far one.
    iter.per_gpu[0].remote_stores.emplace_back(0x1000, 8, 0, 1);
    iter.per_gpu[0].remote_stores.emplace_back(0x1004, 8, 0, 1);
    iter.per_gpu[0].remote_stores.emplace_back(0x9000, 8, 0, 1);
    // GPU 1 only reads the first region.
    iter.consumed[1].push_back(icn::AddrRange{0x1000, 64});

    UpdateSummary summary = summarizeUpdates(iter, 1);
    EXPECT_EQ(summary.unique_bytes, 12u + 8u);
    EXPECT_EQ(summary.useful_bytes, 12u);

    // Nothing was sent to GPU 0.
    UpdateSummary none = summarizeUpdates(iter, 0);
    EXPECT_EQ(none.unique_bytes, 0u);
    EXPECT_EQ(none.useful_bytes, 0u);
}

TEST(UpdateSummaryTest, MultipleSourcesAggregate)
{
    IterationWork iter;
    iter.per_gpu.resize(3);
    iter.consumed.resize(3);
    iter.per_gpu[0].remote_stores.emplace_back(0x100, 8, 0, 2);
    iter.per_gpu[1].remote_stores.emplace_back(0x104, 8, 1, 2);
    iter.consumed[2].push_back(icn::AddrRange{0x100, 16});
    UpdateSummary summary = summarizeUpdates(iter, 2);
    EXPECT_EQ(summary.unique_bytes, 12u); // merged overlap
    EXPECT_EQ(summary.useful_bytes, 12u);
}

TEST(StoreStreamTest, LaneWritesFormWarps)
{
    gpu::WarpCoalescer coalescer;
    std::vector<icn::Store> sink;
    {
        StoreStreamBuilder stream(0, sink, coalescer, 8);
        for (int i = 0; i < 8; ++i)
            stream.laneWrite(1, 0x1000 + i * 8, 8);
        // Warp filled (8 lanes) -> flushed automatically.
        EXPECT_EQ(sink.size(), 1u);
        EXPECT_EQ(sink[0].size, 64u);
    }
}

TEST(StoreStreamTest, DestinationChangeFlushesWarp)
{
    gpu::WarpCoalescer coalescer;
    std::vector<icn::Store> sink;
    StoreStreamBuilder stream(0, sink, coalescer, 32);
    stream.laneWrite(1, 0x1000, 8);
    stream.laneWrite(2, 0x2000, 8); // different destination
    stream.flushWarp();
    ASSERT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink[0].dst, 1u);
    EXPECT_EQ(sink[1].dst, 2u);
}

TEST(StoreStreamTest, ScalarWritesNeverCoalesceTogether)
{
    gpu::WarpCoalescer coalescer;
    std::vector<icn::Store> sink;
    StoreStreamBuilder stream(0, sink, coalescer, 32);
    stream.scalarWrite(1, 0x1000, 8);
    stream.scalarWrite(1, 0x1008, 8); // adjacent, but separate op
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink[0].size, 8u);
    EXPECT_EQ(sink[1].size, 8u);
}

TEST(StoreStreamTest, DestructorFlushesPending)
{
    gpu::WarpCoalescer coalescer;
    std::vector<icn::Store> sink;
    {
        StoreStreamBuilder stream(0, sink, coalescer, 32);
        stream.laneWrite(1, 0x1000, 8);
    }
    EXPECT_EQ(sink.size(), 1u);
}

TEST(TraceSerializationTest, RoundTrip)
{
    WorkloadTrace trace;
    trace.workload = "unit";
    trace.comm_pattern = "peer-to-peer";
    trace.num_gpus = 2;
    IterationWork iter;
    iter.per_gpu.resize(2);
    iter.per_gpu[0].flops = 123.5;
    iter.per_gpu[0].local_bytes = 9999;
    iter.per_gpu[0].dma_extra_local_bytes = 42;
    iter.per_gpu[0].remote_stores.emplace_back(0x1000, 16, 0, 1);
    iter.per_gpu[0].remote_stores.back().is_atomic = true;
    iter.per_gpu[0].dma_copies.push_back(
        DmaCopy{1, icn::AddrRange{0x2000, 64}});
    iter.consumed.resize(2);
    iter.consumed[1].push_back(icn::AddrRange{0x1000, 16});
    trace.iterations.push_back(iter);
    trace.single_gpu_work.emplace_back(246.0, 20000u);

    std::stringstream buffer;
    writeTrace(trace, buffer);
    WorkloadTrace copy = readTrace(buffer);

    EXPECT_EQ(copy.workload, "unit");
    EXPECT_EQ(copy.comm_pattern, "peer-to-peer");
    EXPECT_EQ(copy.num_gpus, 2u);
    ASSERT_EQ(copy.numIterations(), 1u);
    const auto &gpu0 = copy.iterations[0].per_gpu[0];
    EXPECT_DOUBLE_EQ(gpu0.flops, 123.5);
    EXPECT_EQ(gpu0.local_bytes, 9999u);
    EXPECT_EQ(gpu0.dma_extra_local_bytes, 42u);
    ASSERT_EQ(gpu0.remote_stores.size(), 1u);
    EXPECT_EQ(gpu0.remote_stores[0].addr, 0x1000u);
    EXPECT_TRUE(gpu0.remote_stores[0].is_atomic);
    ASSERT_EQ(gpu0.dma_copies.size(), 1u);
    EXPECT_EQ(gpu0.dma_copies[0].range.size, 64u);
    ASSERT_EQ(copy.iterations[0].consumed[1].size(), 1u);
    EXPECT_DOUBLE_EQ(copy.single_gpu_work[0].first, 246.0);
}

TEST(TraceSerializationTest, BadMagicPanics)
{
    std::stringstream buffer;
    buffer << "not a trace at all";
    EXPECT_THROW(readTrace(buffer), common::SimError);
}

TEST(TraceTotalsTest, StoreCountsAndBytes)
{
    WorkloadTrace trace;
    trace.num_gpus = 2;
    IterationWork iter;
    iter.per_gpu.resize(2);
    iter.consumed.resize(2);
    iter.per_gpu[0].remote_stores.emplace_back(0x0, 8, 0, 1);
    iter.per_gpu[1].remote_stores.emplace_back(0x8, 24, 1, 0);
    trace.iterations.push_back(iter);
    trace.iterations.push_back(iter);
    EXPECT_EQ(trace.totalRemoteStores(), 4u);
    EXPECT_EQ(trace.totalRemoteStoreBytes(), 64u);
}
