/**
 * Unit tests for the shadow-memory protocol oracle.
 *
 * The oracle's job is to catch packetization bugs that component tests
 * miss, so half of these tests are mutation tests: run a correct
 * RWQ-to-packetizer pipeline, tamper with the emitted message the way a
 * buggy packetizer would (wrong offset, merged runs, dropped or
 * duplicated sub-packets, stale data, bad payload accounting), and
 * assert the oracle rejects each mutation.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "check/protocol_oracle.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"
#include "interconnect/protocol.hh"

using namespace fp;
using namespace fp::finepack;
using check::ProtocolOracle;
using fp::icn::Store;

namespace {

constexpr GpuId src_gpu = 0;
constexpr GpuId dst_gpu = 1;

Store
makeStore(Addr addr, std::uint32_t size)
{
    Store store(addr, size, src_gpu, dst_gpu);
    store.data.resize(size);
    // Address-derived pattern so every byte is distinguishable.
    for (std::uint32_t i = 0; i < size; ++i)
        store.data[i] = static_cast<std::uint8_t>((addr + i) * 31 + 7);
    return store;
}

/** A partition wired to an oracle plus the packetizer behind it. */
struct Pipeline
{
    FinePackConfig config = defaultConfig();
    ProtocolOracle oracle{src_gpu, defaultConfig()};
    RwqPartition partition{dst_gpu, defaultConfig()};
    Packetizer packetizer{src_gpu, defaultConfig()};
    icn::PcieProtocol protocol{icn::PcieGen::gen4};

    Pipeline() { partition.setObserver(&oracle); }

    /** Push stores, then release-flush and return the wire message. */
    icn::WireMessagePtr
    flushToMessage(const std::vector<Store> &stores)
    {
        std::vector<FlushedPartition> sink;
        for (const Store &store : stores)
            partition.push(store, sink);
        partition.flush(FlushReason::release, sink);
        EXPECT_EQ(sink.size(), 1u);
        return packetizer.toMessage(sink.front(), protocol);
    }
};

} // namespace

TEST(ProtocolOracleTest, VerifiesCorrectPipeline)
{
    Pipeline pipe;
    auto msg = pipe.flushToMessage({
        makeStore(0x1000, 8),
        makeStore(0x1010, 4),
        makeStore(0x2040, 16),
    });
    pipe.oracle.verifyMessage(*msg);
    pipe.oracle.verifyDrained();

    EXPECT_EQ(pipe.oracle.storesRecorded(), 3u);
    EXPECT_EQ(pipe.oracle.transactionsVerified(), 1u);
    // 28 bytes checked at flush and again at packetization.
    EXPECT_EQ(pipe.oracle.bytesVerified(), 56u);
    EXPECT_EQ(pipe.oracle.valueBytesVerified(), 56u);
}

TEST(ProtocolOracleTest, VerifiesOverwriteInPlace)
{
    Pipeline pipe;
    Store first = makeStore(0x1000, 8);
    Store second = makeStore(0x1004, 8);
    for (auto &byte : second.data)
        byte = static_cast<std::uint8_t>(byte ^ 0xff);
    auto msg = pipe.flushToMessage({first, second});
    // One contiguous run [0x1000, 0x100c) with the overlap holding the
    // second store's bytes.
    ASSERT_EQ(msg->stores.size(), 1u);
    EXPECT_EQ(msg->stores[0].size, 12u);
    pipe.oracle.verifyMessage(*msg);
    pipe.oracle.verifyDrained();
}

TEST(ProtocolOracleTest, AcceptsDataLessStores)
{
    // Timing-only traces carry no payload bytes: coverage is still
    // verified, values are not.
    Pipeline pipe;
    Store store(0x1000, 16, src_gpu, dst_gpu);
    auto msg = pipe.flushToMessage({store});
    pipe.oracle.verifyMessage(*msg);
    pipe.oracle.verifyDrained();
    EXPECT_EQ(pipe.oracle.bytesVerified(), 32u);
    EXPECT_EQ(pipe.oracle.valueBytesVerified(), 0u);
}

TEST(ProtocolOracleTest, CatchesCorruptedData)
{
    Pipeline pipe;
    auto msg = pipe.flushToMessage({makeStore(0x1000, 8)});
    msg->stores[0].data[3] ^= 0x01; // single flipped bit
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesOffsetEncodingBug)
{
    // A de-packetizer that mis-decodes a sub-header offset expands the
    // store at the wrong address.
    Pipeline pipe;
    auto msg = pipe.flushToMessage({makeStore(0x1000, 8)});
    msg->stores[0].addr += 4;
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesMergedRunsIgnoringByteEnables)
{
    // A broken packetizer that emits one sub-packet per *entry* (span
    // first..last) instead of one per contiguous run would transfer the
    // gap bytes too. The oracle must reject the phantom bytes.
    Pipeline pipe;
    std::vector<FlushedPartition> sink;
    pipe.partition.push(makeStore(0x1000, 4), sink);
    pipe.partition.push(makeStore(0x1010, 4), sink);
    pipe.partition.flush(FlushReason::release, sink);
    ASSERT_EQ(sink.size(), 1u);

    auto msg = pipe.packetizer.toMessage(sink.front(), pipe.protocol);
    ASSERT_EQ(msg->stores.size(), 2u);
    // Mutate: merge both runs into one span-covering sub-packet.
    Store merged(0x1000, 0x14, src_gpu, dst_gpu);
    merged.data.resize(0x14, 0);
    msg->stores = {merged};
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesDroppedSubPacket)
{
    Pipeline pipe;
    auto msg = pipe.flushToMessage({
        makeStore(0x1000, 8),
        makeStore(0x1100, 8),
    });
    ASSERT_EQ(msg->stores.size(), 2u);
    msg->stores.pop_back();
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesDuplicatedSubPacket)
{
    Pipeline pipe;
    auto msg = pipe.flushToMessage({makeStore(0x1000, 8)});
    msg->stores.push_back(msg->stores[0]);
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesSubPacketOutsideWindow)
{
    Pipeline pipe;
    auto msg = pipe.flushToMessage({makeStore(0x1000, 8)});
    // Push the store past the window's addressable range.
    msg->stores[0].addr += pipe.config.addressableRange();
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesPayloadMisaccounting)
{
    Pipeline pipe;
    auto msg = pipe.flushToMessage({makeStore(0x1000, 8)});
    msg->payload_bytes += 4; // sub-header geometry no longer adds up
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesPacketWithoutFlush)
{
    Pipeline pipe;
    auto msg = pipe.flushToMessage({makeStore(0x1000, 8)});
    pipe.oracle.verifyMessage(*msg);
    // Replaying the same packet again has no matching flush.
    EXPECT_THROW(pipe.oracle.verifyMessage(*msg), common::SimError);
}

TEST(ProtocolOracleTest, CatchesLostBytesAtDrain)
{
    Pipeline pipe;
    std::vector<FlushedPartition> sink;
    pipe.partition.push(makeStore(0x1000, 8), sink);
    EXPECT_TRUE(sink.empty());
    // The byte is still buffered: a drain check now must fail (a real
    // run issues the release fence first).
    EXPECT_THROW(pipe.oracle.verifyDrained(), common::SimError);
}

TEST(ProtocolOracleTest, CatchesFlushThatNeverPacketized)
{
    Pipeline pipe;
    std::vector<FlushedPartition> sink;
    pipe.partition.push(makeStore(0x1000, 8), sink);
    pipe.partition.flush(FlushReason::release, sink);
    // Flushed but the message was never emitted/verified.
    EXPECT_THROW(pipe.oracle.verifyDrained(), common::SimError);
}

TEST(ProtocolOracleTest, TracksCapacityFlushesInCausalOrder)
{
    // Fill a window until it flushes from capacity pressure, with
    // overlapping rewrites mixed in; every emitted message must verify.
    Pipeline pipe;
    common::Rng rng = common::Rng(99);
    std::uint64_t verified = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr addr = 0x10000 + rng.below(1 << 16);
        auto size = static_cast<std::uint32_t>(rng.range(1, 16));
        Addr line = addr & ~Addr{127};
        if (addr + size > line + 128)
            size = static_cast<std::uint32_t>(line + 128 - addr);

        std::vector<FlushedPartition> sink;
        pipe.partition.push(makeStore(addr, size), sink);
        for (const FlushedPartition &flushed : sink) {
            auto msg = pipe.packetizer.toMessage(flushed, pipe.protocol);
            pipe.oracle.verifyMessage(*msg);
            ++verified;
        }
    }
    std::vector<FlushedPartition> sink;
    pipe.partition.flush(FlushReason::release, sink);
    for (const FlushedPartition &flushed : sink) {
        auto msg = pipe.packetizer.toMessage(flushed, pipe.protocol);
        pipe.oracle.verifyMessage(*msg);
        ++verified;
    }
    pipe.oracle.verifyDrained();
    EXPECT_GT(verified, 0u);
    EXPECT_EQ(pipe.oracle.transactionsVerified(), verified);
}
