/**
 * Tests for the FP_INVARIANT machinery: registry counting, failure
 * behavior, and - when checks are compiled in - that the instrumented
 * hot paths actually evaluate their invariants.
 */

#include <gtest/gtest.h>

#include "check/invariant.hh"
#include "common/event_queue.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"

using namespace fp;
using check::InvariantRegistry;

namespace {

class InvariantTest : public ::testing::Test
{
  protected:
    void SetUp() override { InvariantRegistry::instance().reset(); }
    void TearDown() override { InvariantRegistry::instance().reset(); }
};

} // namespace

TEST_F(InvariantTest, RegistryCountsChecksPerName)
{
    auto &registry = InvariantRegistry::instance();
    EXPECT_EQ(registry.totalChecks(), 0u);

    registry.recordCheck("alpha");
    registry.recordCheck("alpha");
    registry.recordCheck("beta");

    EXPECT_EQ(registry.checks("alpha"), 2u);
    EXPECT_EQ(registry.checks("beta"), 1u);
    EXPECT_EQ(registry.checks("gamma"), 0u);
    EXPECT_EQ(registry.totalChecks(), 3u);
    EXPECT_EQ(registry.counts().size(), 2u);
}

TEST_F(InvariantTest, FailurePanicsAndIsCounted)
{
    auto &registry = InvariantRegistry::instance();
    EXPECT_THROW(registry.fail("broken", __FILE__, __LINE__, "boom"),
                 common::SimError);
    EXPECT_EQ(registry.failures(), 1u);
    try {
        registry.fail("broken", __FILE__, __LINE__, "boom");
    } catch (const common::SimError &err) {
        EXPECT_EQ(err.kind(), common::SimError::Kind::Panic);
        EXPECT_NE(std::string(err.what()).find("[broken]"),
                  std::string::npos);
    }
}

TEST_F(InvariantTest, MacroPassesAndCountsWhenEnabled)
{
    FP_INVARIANT(1 + 1 == 2, "macro-smoke", "arithmetic broke");
    if constexpr (check::invariants_enabled) {
        EXPECT_EQ(InvariantRegistry::instance().checks("macro-smoke"), 1u);
    } else {
        EXPECT_EQ(InvariantRegistry::instance().totalChecks(), 0u);
    }
}

TEST_F(InvariantTest, MacroFailsOnViolationWhenEnabled)
{
    if constexpr (check::invariants_enabled) {
        EXPECT_THROW(
            FP_INVARIANT(false, "must-fail", "intentional violation"),
            common::SimError);
        EXPECT_EQ(InvariantRegistry::instance().failures(), 1u);
    } else {
        // Compiled out: the violated condition is never evaluated.
        EXPECT_NO_THROW(
            FP_INVARIANT(false, "must-fail", "intentional violation"));
    }
}

TEST_F(InvariantTest, RwqHotPathIsInstrumented)
{
    if constexpr (!check::invariants_enabled)
        GTEST_SKIP() << "FP_CHECK disabled in this build";

    finepack::RwqPartition partition(1, finepack::defaultConfig());
    icn::Store store(0x1000, 8, 0, 1);
    partition.push(store);
    icn::Store hit(0x1002, 8, 0, 1); // overlapping rewrite
    partition.push(hit);

    auto &registry = InvariantRegistry::instance();
    EXPECT_EQ(registry.checks("rwq-payload-accounting"), 2u);
    EXPECT_EQ(registry.checks("rwq-offset-in-window"), 2u);
    EXPECT_EQ(registry.checks("rwq-overwrite-in-place"), 2u);
    EXPECT_EQ(registry.checks("rwq-entry-budget"), 2u);
}

TEST_F(InvariantTest, PacketizerIsInstrumented)
{
    if constexpr (!check::invariants_enabled)
        GTEST_SKIP() << "FP_CHECK disabled in this build";

    finepack::FinePackConfig config = finepack::defaultConfig();
    finepack::RwqPartition partition(1, config);
    partition.push(icn::Store(0x1000, 8, 0, 1));
    auto flushed = partition.flush(finepack::FlushReason::release);

    finepack::Packetizer packetizer(0, config);
    packetizer.packetize(flushed);

    auto &registry = InvariantRegistry::instance();
    EXPECT_EQ(registry.checks("packetizer-byte-conservation"), 1u);
    EXPECT_EQ(registry.checks("packetizer-run-splitting"), 1u);
    EXPECT_EQ(registry.checks("packetizer-payload-budget"), 1u);
    EXPECT_EQ(registry.checks("rwq-flush-nonempty"), 1u);
}

TEST_F(InvariantTest, EventQueueIsInstrumented)
{
    if constexpr (!check::invariants_enabled)
        GTEST_SKIP() << "FP_CHECK disabled in this build";

    common::EventQueue queue;
    int fired = 0;
    queue.schedule([&fired]() { ++fired; }, 10);
    queue.run();

    auto &registry = InvariantRegistry::instance();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(registry.checks("event-not-in-past"), 1u);
    EXPECT_EQ(registry.checks("event-time-monotonic"), 1u);
}
