/** Unit tests for the byte-granular shadow memory. */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/shadow_memory.hh"
#include "common/logging.hh"

using namespace fp;
using check::ShadowByte;
using check::ShadowMemory;

TEST(ShadowMemoryTest, StartsEmpty)
{
    ShadowMemory shadow;
    EXPECT_TRUE(shadow.empty());
    EXPECT_EQ(shadow.population(), 0u);
    EXPECT_FALSE(shadow.contains(0x1000));
    EXPECT_FALSE(shadow.get(0x1000).present);
}

TEST(ShadowMemoryTest, WriteMakesBytesPresentWithValues)
{
    ShadowMemory shadow;
    std::uint8_t data[4] = {1, 2, 3, 4};
    shadow.write(0x1000, 4, data);

    EXPECT_EQ(shadow.population(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        ShadowByte byte = shadow.get(0x1000 + i);
        EXPECT_TRUE(byte.present);
        EXPECT_TRUE(byte.has_value);
        EXPECT_EQ(byte.value, data[i]);
    }
    EXPECT_FALSE(shadow.contains(0x0fff));
    EXPECT_FALSE(shadow.contains(0x1004));
}

TEST(ShadowMemoryTest, LastWriterWins)
{
    ShadowMemory shadow;
    std::uint8_t first[2] = {0xaa, 0xbb};
    std::uint8_t second[1] = {0xcc};
    shadow.write(0x2000, 2, first);
    shadow.write(0x2001, 1, second);

    EXPECT_EQ(shadow.population(), 2u); // overwrite, not growth
    EXPECT_EQ(shadow.get(0x2000).value, 0xaa);
    EXPECT_EQ(shadow.get(0x2001).value, 0xcc);
}

TEST(ShadowMemoryTest, DataLessWriteInvalidatesValue)
{
    ShadowMemory shadow;
    std::uint8_t data[1] = {0x42};
    shadow.write(0x3000, 1, data);
    // A timing-only store is the new last writer with unknown content.
    shadow.write(0x3000, 1, nullptr);

    ShadowByte byte = shadow.get(0x3000);
    EXPECT_TRUE(byte.present);
    EXPECT_FALSE(byte.has_value);
}

TEST(ShadowMemoryTest, WritesSpanningLinesLandInBothBlocks)
{
    ShadowMemory shadow(128);
    shadow.write(128 - 2, 4, nullptr); // straddles the line boundary
    EXPECT_EQ(shadow.population(), 4u);
    EXPECT_TRUE(shadow.contains(126));
    EXPECT_TRUE(shadow.contains(127));
    EXPECT_TRUE(shadow.contains(128));
    EXPECT_TRUE(shadow.contains(129));
}

TEST(ShadowMemoryTest, EraseRemovesSingleBytes)
{
    ShadowMemory shadow;
    shadow.write(0x1000, 3, nullptr);
    EXPECT_TRUE(shadow.erase(0x1001));
    EXPECT_FALSE(shadow.erase(0x1001)); // already gone
    EXPECT_EQ(shadow.population(), 2u);
    EXPECT_TRUE(shadow.contains(0x1000));
    EXPECT_FALSE(shadow.contains(0x1001));
    EXPECT_TRUE(shadow.contains(0x1002));

    EXPECT_TRUE(shadow.erase(0x1000));
    EXPECT_TRUE(shadow.erase(0x1002));
    EXPECT_TRUE(shadow.empty());
}

TEST(ShadowMemoryTest, SampleResidentIsSortedAndBounded)
{
    ShadowMemory shadow;
    shadow.write(0x5000, 2, nullptr);
    shadow.write(0x1000, 2, nullptr);
    shadow.write(0x3000, 1, nullptr);

    auto all = shadow.sampleResident(10);
    ASSERT_EQ(all.size(), 5u);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    EXPECT_EQ(all.front(), 0x1000u);
    EXPECT_EQ(all.back(), 0x5001u);

    EXPECT_EQ(shadow.sampleResident(2).size(), 2u);
}

TEST(ShadowMemoryTest, ClearDropsEverything)
{
    ShadowMemory shadow;
    shadow.write(0x1000, 64, nullptr);
    shadow.clear();
    EXPECT_TRUE(shadow.empty());
    EXPECT_FALSE(shadow.contains(0x1000));
}

TEST(ShadowMemoryTest, RejectsNonPowerOfTwoLine)
{
    EXPECT_THROW(ShadowMemory(100), common::SimError);
    EXPECT_THROW(ShadowMemory(0), common::SimError);
}
