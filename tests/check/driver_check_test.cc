/**
 * End-to-end oracle tests: replay real workload traces through the
 * event-driven simulation with SimConfig::check enabled and assert the
 * shadow-memory oracle verifies every FinePack transaction - including
 * under configurations that stress splitting (tiny offset windows,
 * multiple windows, inactivity-timeout flushes).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/driver.hh"
#include "workloads/workload.hh"

using namespace fp;

namespace {

trace::WorkloadTrace
smallTrace(const std::string &name, std::uint32_t gpus = 4)
{
    auto workload = workloads::createWorkload(name);
    workloads::WorkloadParams params;
    params.scale = 0.05;
    params.num_gpus = gpus;
    params.seed = 42;
    return workload->generateTrace(params);
}

} // namespace

TEST(DriverCheckTest, OracleVerifiesJacobiReplay)
{
    sim::SimConfig config;
    config.check = true;
    sim::SimulationDriver driver(config);

    trace::WorkloadTrace trace = smallTrace("jacobi");
    sim::RunResult result = driver.run(trace, sim::Paradigm::finepack);

    EXPECT_GT(result.oracle_transactions, 0u);
    EXPECT_GT(result.oracle_stores, 0u);
    EXPECT_GT(result.oracle_bytes, 0u);
    EXPECT_EQ(result.oracle_transactions, result.finepack_packets);
}

TEST(DriverCheckTest, OracleVerifiesPagerankReplay)
{
    // Scatter-heavy pattern: many windows, many capacity flushes.
    sim::SimConfig config;
    config.check = true;
    sim::SimulationDriver driver(config);

    trace::WorkloadTrace trace = smallTrace("pagerank");
    sim::RunResult result = driver.run(trace, sim::Paradigm::finepack);
    EXPECT_GT(result.oracle_transactions, 0u);
}

TEST(DriverCheckTest, OracleVerifiesWithMultipleWindows)
{
    sim::SimConfig config;
    config.check = true;
    config.finepack.windows_per_partition = 4;
    sim::SimulationDriver driver(config);

    trace::WorkloadTrace trace = smallTrace("jacobi");
    sim::RunResult result = driver.run(trace, sim::Paradigm::finepack);
    EXPECT_GT(result.oracle_transactions, 0u);
}

TEST(DriverCheckTest, OracleVerifiesWithTimeoutFlushes)
{
    sim::SimConfig config;
    config.check = true;
    config.finepack_flush_timeout = 500;
    sim::SimulationDriver driver(config);

    trace::WorkloadTrace trace = smallTrace("jacobi");
    sim::RunResult result = driver.run(trace, sim::Paradigm::finepack);
    EXPECT_GT(result.oracle_transactions, 0u);
}

TEST(DriverCheckTest, OracleVerifiesNarrowSubheaderConfig)
{
    // A 3-byte sub-header leaves a 14-bit offset: windows are small, so
    // window-violation flushes dominate and splitting is stressed.
    sim::SimConfig config;
    config.check = true;
    config.finepack = finepack::configWithSubheader(3);
    sim::SimulationDriver driver(config);

    trace::WorkloadTrace trace = smallTrace("jacobi");
    sim::RunResult result = driver.run(trace, sim::Paradigm::finepack);
    EXPECT_GT(result.oracle_transactions, 0u);
}

TEST(DriverCheckTest, CheckMatchesUncheckedTimingExactly)
{
    // The oracle is an observer: enabling it must not perturb the
    // simulated timing or traffic.
    trace::WorkloadTrace trace = smallTrace("jacobi");

    sim::SimConfig plain;
    sim::RunResult unchecked =
        sim::SimulationDriver(plain).run(trace, sim::Paradigm::finepack);

    sim::SimConfig checked_config;
    checked_config.check = true;
    sim::RunResult checked = sim::SimulationDriver(checked_config)
                                 .run(trace, sim::Paradigm::finepack);

    EXPECT_EQ(checked.total_time, unchecked.total_time);
    EXPECT_EQ(checked.wire_bytes, unchecked.wire_bytes);
    EXPECT_EQ(checked.messages, unchecked.messages);
    EXPECT_EQ(checked.finepack_packets, unchecked.finepack_packets);
}

TEST(DriverCheckTest, CheckIsNoOpForOtherParadigms)
{
    sim::SimConfig config;
    config.check = true;
    common::setQuiet(true);
    sim::SimulationDriver driver(config);
    trace::WorkloadTrace trace = smallTrace("jacobi");
    sim::RunResult result = driver.run(trace, sim::Paradigm::p2p_stores);
    common::setQuiet(false);
    EXPECT_EQ(result.oracle_transactions, 0u);
    EXPECT_GT(result.total_time, 0u);
}
