/**
 * Unit tests for the same-tick race detector and the schedule
 * perturbation harness: injected conflicts must fire, commutative
 * patterns must stay quiet, waivers must suppress, and a full
 * simulated run must be schedule-independent (identical oracle and
 * stats digests under shuffled tie-breaks).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/digest.hh"
#include "check/race_detector.hh"
#include "common/event_queue.hh"
#include "sim/driver.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

using namespace fp;
using common::AccessRecorder;
using common::Event;
using common::EventQueue;
using check::RaceDetector;

namespace {

/** Schedule a lambda that declares one access when it executes. */
void
scheduleAccess(EventQueue &queue, Tick when, int priority,
               const void *resource, const char *label, bool write)
{
    queue.schedule(
        [&queue, resource, label, write]() {
            AccessRecorder rec(queue);
            if (write)
                rec.write(resource, label);
            else
                rec.read(resource, label);
        },
        when, priority);
}

trace::WorkloadTrace
smallTrace(const std::string &name)
{
    workloads::WorkloadParams params;
    params.scale = 0.05;
    params.num_gpus = 4;
    params.seed = 42;
    return workloads::createWorkload(name)->generateTrace(params);
}

} // namespace

TEST(RaceDetectorTest, InjectedSameTickWriteWriteConflictFires)
{
    // The acceptance-criterion test: two events at the same
    // (tick, priority) writing the same resource MUST be flagged.
    EventQueue queue;
    RaceDetector detector;
    queue.setObserver(&detector);

    int resource = 0;
    scheduleAccess(queue, 10, Event::prio_default, &resource, "victim",
                   true);
    scheduleAccess(queue, 10, Event::prio_default, &resource, "victim",
                   true);
    queue.run();
    detector.finish();

    ASSERT_EQ(detector.conflicts().size(), 1u);
    const auto &conflict = detector.conflicts().front();
    EXPECT_STREQ(conflict.kind(), "W/W");
    EXPECT_EQ(conflict.tick, 10u);
    EXPECT_EQ(conflict.priority, Event::prio_default);
    EXPECT_EQ(conflict.label, "victim");
    EXPECT_EQ(conflict.resource, &resource);
    EXPECT_LT(conflict.first_sequence, conflict.second_sequence);
    EXPECT_EQ(detector.contendedBatches(), 1u);
}

TEST(RaceDetectorTest, ReadThenWriteAndWriteThenReadConflict)
{
    EventQueue queue;
    RaceDetector detector;
    queue.setObserver(&detector);

    int a = 0, b = 0;
    scheduleAccess(queue, 5, Event::prio_default, &a, "a", false);
    scheduleAccess(queue, 5, Event::prio_default, &a, "a", true);
    scheduleAccess(queue, 9, Event::prio_default, &b, "b", true);
    scheduleAccess(queue, 9, Event::prio_default, &b, "b", false);
    queue.run();
    detector.finish();

    ASSERT_EQ(detector.conflicts().size(), 2u);
    EXPECT_STREQ(detector.conflicts()[0].kind(), "R/W");
    EXPECT_STREQ(detector.conflicts()[1].kind(), "R/W");
}

TEST(RaceDetectorTest, CommutativePatternsStayQuiet)
{
    EventQueue queue;
    RaceDetector detector;
    queue.setObserver(&detector);

    int shared = 0, mine = 0, yours = 0;
    // Concurrent reads never conflict.
    scheduleAccess(queue, 1, Event::prio_default, &shared, "s", false);
    scheduleAccess(queue, 1, Event::prio_default, &shared, "s", false);
    // Writes to distinct resources never conflict.
    scheduleAccess(queue, 2, Event::prio_default, &mine, "m", true);
    scheduleAccess(queue, 2, Event::prio_default, &yours, "y", true);
    // Same resource at different ticks is ordered by time.
    scheduleAccess(queue, 3, Event::prio_default, &shared, "s", true);
    scheduleAccess(queue, 4, Event::prio_default, &shared, "s", true);
    // Same tick, different priorities is ordered by priority.
    scheduleAccess(queue, 5, Event::prio_arrival, &shared, "s", true);
    scheduleAccess(queue, 5, Event::prio_inject, &shared, "s", true);
    queue.run();
    detector.finish();

    EXPECT_TRUE(detector.conflicts().empty());
    EXPECT_EQ(detector.waivedConflicts(), 0u);
}

TEST(RaceDetectorTest, RepeatedAccessesWithinOneEventDoNotConflict)
{
    EventQueue queue;
    RaceDetector detector;
    queue.setObserver(&detector);

    int resource = 0;
    queue.schedule(
        [&queue, &resource]() {
            AccessRecorder rec(queue);
            rec.read(&resource, "r");
            rec.write(&resource, "r");
            rec.write(&resource, "r");
        },
        10, Event::prio_default);
    // A second, non-touching event keeps the batch contended.
    queue.schedule([]() {}, 10, Event::prio_default);
    queue.run();
    detector.finish();

    EXPECT_TRUE(detector.conflicts().empty());
    EXPECT_EQ(detector.contendedBatches(), 1u);
}

TEST(RaceDetectorTest, WaiverSuppressesByLabelGlob)
{
    EventQueue queue;
    RaceDetector detector;
    detector.waive("fabric.down*");
    queue.setObserver(&detector);

    int downlink = 0, uplink = 0;
    scheduleAccess(queue, 10, Event::prio_arrival, &downlink,
                   "fabric.down2", true);
    scheduleAccess(queue, 10, Event::prio_arrival, &downlink,
                   "fabric.down2", true);
    scheduleAccess(queue, 10, Event::prio_arrival, &uplink,
                   "fabric.up1", true);
    scheduleAccess(queue, 10, Event::prio_arrival, &uplink,
                   "fabric.up1", true);
    queue.run();
    detector.finish();

    EXPECT_EQ(detector.waivedConflicts(), 1u);
    ASSERT_EQ(detector.conflicts().size(), 1u);
    EXPECT_EQ(detector.conflicts().front().label, "fabric.up1");
}

TEST(RaceDetectorTest, ResetClearsStateButKeepsWaivers)
{
    EventQueue queue;
    RaceDetector detector;
    detector.waive("noisy*");
    queue.setObserver(&detector);

    int resource = 0;
    scheduleAccess(queue, 1, Event::prio_default, &resource, "x", true);
    scheduleAccess(queue, 1, Event::prio_default, &resource, "x", true);
    queue.run();
    detector.finish();
    ASSERT_EQ(detector.conflicts().size(), 1u);

    detector.reset();
    EXPECT_TRUE(detector.conflicts().empty());
    EXPECT_EQ(detector.eventsObserved(), 0u);
    EXPECT_EQ(detector.contendedBatches(), 0u);
    ASSERT_EQ(detector.waivers().size(), 1u);
    EXPECT_EQ(detector.waivers().front(), "noisy*");
}

TEST(RaceDetectorTest, GlobMatchSemantics)
{
    EXPECT_TRUE(RaceDetector::globMatch("*", "anything"));
    EXPECT_TRUE(RaceDetector::globMatch("fabric.down*", "fabric.down0"));
    EXPECT_TRUE(RaceDetector::globMatch("fabric.down*", "fabric.down"));
    EXPECT_FALSE(RaceDetector::globMatch("fabric.down*", "fabric.up0"));
    EXPECT_TRUE(RaceDetector::globMatch("gpu?.egress", "gpu3.egress"));
    EXPECT_FALSE(RaceDetector::globMatch("gpu?.egress", "gpu12.egress"));
    EXPECT_TRUE(RaceDetector::globMatch("*rwq*", "gpu0.egress.rwq[2]"));
    EXPECT_FALSE(RaceDetector::globMatch("", "x"));
    EXPECT_TRUE(RaceDetector::globMatch("", ""));
}

TEST(RaceDetectorTest, ReportSerializesConflicts)
{
    EventQueue queue;
    RaceDetector detector;
    queue.setObserver(&detector);

    int resource = 0;
    scheduleAccess(queue, 7, Event::prio_inject, &resource, "res", true);
    scheduleAccess(queue, 7, Event::prio_inject, &resource, "res", true);
    queue.run();
    detector.finish();

    std::ostringstream os;
    detector.writeReport(os);
    const std::string report = os.str();
    EXPECT_NE(report.find("\"conflicts\""), std::string::npos);
    EXPECT_NE(report.find("\"W/W\""), std::string::npos);
    EXPECT_NE(report.find("\"res\""), std::string::npos);
    EXPECT_NE(report.find("\"contended_batches\""), std::string::npos);
    EXPECT_NE(report.find("\"first_sequence\""), std::string::npos);
}

TEST(RaceDetectorTest, SimulatedRunHasNoUnwaivedConflicts)
{
    // End-to-end static pass: a finepack replay under the detector must
    // be conflict-free once the known-commutative downlink FIFO
    // arbitration is waived.
    trace::WorkloadTrace trace = smallTrace("jacobi");

    RaceDetector detector;
    detector.waive("fabric.down*");

    sim::SimConfig config;
    config.check = true;
    config.queue_observer = &detector;
    sim::SimulationDriver driver(config);
    sim::RunResult result = driver.run(trace, sim::Paradigm::finepack);
    detector.finish();

    EXPECT_GT(detector.eventsObserved(), 0u);
    EXPECT_GT(detector.accessesRecorded(), 0u);
    EXPECT_TRUE(detector.conflicts().empty())
        << detector.conflicts().size() << " unwaived conflicts, first: "
        << detector.conflicts().front().label;
    EXPECT_EQ(detector.droppedConflicts(), 0u);
    EXPECT_GT(result.oracle_transactions, 0u);
    EXPECT_NE(result.oracle_digest, 0u);
}

TEST(RaceDetectorTest, ShuffledSchedulesProduceIdenticalDigests)
{
    // End-to-end dynamic pass: permuting same-(tick, priority) order
    // must not change what the run computes - identical oracle digests
    // and identical timing under every seed.
    trace::WorkloadTrace trace = smallTrace("sssp");

    auto run_once = [&](std::uint64_t seed) {
        sim::SimConfig config;
        config.check = true;
        config.tie_break_shuffle_seed = seed;
        sim::SimulationDriver driver(config);
        return driver.run(trace, sim::Paradigm::finepack);
    };

    sim::RunResult baseline = run_once(0);
    ASSERT_NE(baseline.oracle_digest, 0u);
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        sim::RunResult shuffled = run_once(seed);
        EXPECT_EQ(shuffled.oracle_digest, baseline.oracle_digest)
            << "oracle digest diverged under seed " << seed;
        EXPECT_EQ(shuffled.total_time, baseline.total_time);
        EXPECT_EQ(shuffled.wire_bytes, baseline.wire_bytes);
        EXPECT_EQ(shuffled.messages, baseline.messages);
    }
}

TEST(DigestTest, KnownFnv1aValues)
{
    check::Digest digest;
    EXPECT_EQ(digest.value(), 0xcbf29ce484222325ull);
    digest.update(std::string_view("a"));
    EXPECT_EQ(digest.value(), 0xaf63dc4c8601ec8cull);

    check::Digest order_a, order_b;
    order_a.updateU64(1);
    order_a.updateU64(2);
    order_b.updateU64(2);
    order_b.updateU64(1);
    EXPECT_NE(order_a.value(), order_b.value());
}
