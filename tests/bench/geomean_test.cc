/**
 * Unit tests for the shared bench helpers: geomean/mean guards and the
 * JSON reporter's flag handling and output schema.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "../../bench/bench_common.hh"
#include "../support/mini_json.hh"

using fp::bench::geomean;
using fp::bench::mean;
using fp::testing::parseJson;

TEST(GeomeanTest, PositiveValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 4.0, 8.0}), 4.0, 1e-12);
}

TEST(GeomeanTest, EmptyInputIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(GeomeanTest, NonPositiveMemberIsZeroNotNan)
{
    // A paradigm that makes no progress yields a 0x speedup; the
    // geomean over the suite must degrade to 0, not NaN or -inf.
    EXPECT_DOUBLE_EQ(geomean({2.0, 0.0, 8.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({-1.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 2.0, -3.0}), 0.0);
}

TEST(GeomeanTest, MeanHelper)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(JsonReporterTest, InertWithoutFlag)
{
    const char *argv[] = {"bench"};
    fp::bench::JsonReporter reporter(
        "t", 1, const_cast<char **>(argv), 1.0);
    EXPECT_FALSE(reporter.enabled());
    reporter.add("m", 1.0);
    EXPECT_TRUE(reporter.write()); // nothing to do, still a success
}

TEST(JsonReporterTest, WritesSchemaWithSortedMetrics)
{
    std::string path =
        ::testing::TempDir() + "geomean_test_reporter.json";
    const char *argv[] = {"bench", "--json", path.c_str()};
    fp::bench::JsonReporter reporter(
        "fig_test", 3, const_cast<char **>(argv), 0.5);
    ASSERT_TRUE(reporter.enabled());
    reporter.add("zeta", 2.0);
    reporter.add("alpha", 1.0);
    ASSERT_TRUE(reporter.write());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto doc = parseJson(buffer.str());
    EXPECT_EQ(doc.at("bench").string, "fig_test");
    EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 1.0);
    EXPECT_DOUBLE_EQ(doc.at("scale").number, 0.5);
    EXPECT_DOUBLE_EQ(doc.at("metrics").at("alpha").number, 1.0);
    EXPECT_DOUBLE_EQ(doc.at("metrics").at("zeta").number, 2.0);
    std::remove(path.c_str());
}
