/**
 * Cross-workload tests: every evaluation application must produce a
 * well-formed trace with its paper-documented communication pattern,
 * and traces must be deterministic. Runs at a small scale.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.hh"

using namespace fp;
using namespace fp::workloads;

namespace {

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.num_gpus = 4;
    params.scale = 0.05;
    params.seed = 42;
    return params;
}

} // namespace

class AllWorkloads : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllWorkloads, ProducesWellFormedTrace)
{
    auto workload = createWorkload(GetParam());
    trace::WorkloadTrace trace = workload->generateTrace(smallParams());

    EXPECT_EQ(trace.workload, GetParam());
    EXPECT_EQ(trace.num_gpus, 4u);
    EXPECT_GT(trace.numIterations(), 0u);
    EXPECT_EQ(trace.single_gpu_work.size(), trace.iterations.size());
    EXPECT_GT(trace.totalRemoteStores(), 0u);

    for (const auto &iter : trace.iterations) {
        ASSERT_EQ(iter.per_gpu.size(), 4u);
        ASSERT_EQ(iter.consumed.size(), 4u);
        for (GpuId g = 0; g < 4; ++g) {
            const auto &work = iter.per_gpu[g];
            EXPECT_GE(work.flops, 0.0);
            for (const auto &store : work.remote_stores) {
                EXPECT_EQ(store.src, g);
                EXPECT_NE(store.dst, g);
                EXPECT_LT(store.dst, 4u);
                EXPECT_GT(store.size, 0u);
                EXPECT_LE(store.size, 128u);
                // L1-coalesced accesses never cross a cache line.
                EXPECT_EQ((store.addr & ~Addr{127}),
                          ((store.addr + store.size - 1) & ~Addr{127}));
            }
            for (const auto &copy : work.dma_copies) {
                EXPECT_NE(copy.dst, g);
                EXPECT_GT(copy.range.size, 0u);
            }
        }
    }
}

TEST_P(AllWorkloads, TraceIsDeterministic)
{
    auto a = createWorkload(GetParam())->generateTrace(smallParams());
    auto b = createWorkload(GetParam())->generateTrace(smallParams());
    ASSERT_EQ(a.numIterations(), b.numIterations());
    EXPECT_EQ(a.totalRemoteStores(), b.totalRemoteStores());
    for (std::uint32_t i = 0; i < a.numIterations(); ++i) {
        for (GpuId g = 0; g < 4; ++g) {
            const auto &sa = a.iterations[i].per_gpu[g].remote_stores;
            const auto &sb = b.iterations[i].per_gpu[g].remote_stores;
            ASSERT_EQ(sa.size(), sb.size());
            for (std::size_t k = 0; k < sa.size(); ++k) {
                EXPECT_EQ(sa[k].addr, sb[k].addr);
                EXPECT_EQ(sa[k].size, sb[k].size);
                EXPECT_EQ(sa[k].dst, sb[k].dst);
            }
        }
    }
}

TEST_P(AllWorkloads, SomeUpdatesAreConsumed)
{
    auto trace = createWorkload(GetParam())->generateTrace(smallParams());
    EXPECT_GT(trace::totalUsefulBytes(trace), 0u);
    EXPECT_GE(trace::totalUniqueBytes(trace),
              trace::totalUsefulBytes(trace));
}

TEST_P(AllWorkloads, CommPatternMatchesPaper)
{
    auto workload = createWorkload(GetParam());
    std::string pattern = workload->commPattern();
    std::string name = GetParam();
    if (name == "jacobi" || name == "pagerank" || name == "eqwp" ||
        name == "diffusion") {
        EXPECT_EQ(pattern, "peer-to-peer");
    } else if (name == "sssp") {
        EXPECT_EQ(pattern, "many-to-many");
    } else {
        EXPECT_EQ(pattern, "all-to-all");
    }
}

TEST_P(AllWorkloads, DestinationSpreadMatchesPattern)
{
    auto workload = createWorkload(GetParam());
    auto trace = workload->generateTrace(smallParams());
    std::string pattern = workload->commPattern();

    // Which (src, dst) pairs actually communicate?
    std::set<std::pair<GpuId, GpuId>> pairs;
    for (const auto &iter : trace.iterations)
        for (GpuId g = 0; g < 4; ++g)
            for (const auto &store : iter.per_gpu[g].remote_stores)
                pairs.insert({g, store.dst});

    if (pattern == "peer-to-peer") {
        // Neighbours only: no pair with |src - dst| > 1.
        for (const auto &[src, dst] : pairs)
            EXPECT_LE(src > dst ? src - dst : dst - src, 1u)
                << "pair " << src << "->" << dst;
    } else {
        // Many-to-many / all-to-all reach non-neighbours too.
        bool has_far = false;
        for (const auto &[src, dst] : pairs)
            if ((src > dst ? src - dst : dst - src) > 1)
                has_far = true;
        EXPECT_TRUE(has_far);
    }
}

INSTANTIATE_TEST_SUITE_P(Paper, AllWorkloads,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadFactoryTest, AllNamesCreate)
{
    EXPECT_EQ(allWorkloadNames().size(), 8u);
    for (const auto &name : allWorkloadNames()) {
        auto workload = createWorkload(name);
        EXPECT_STREQ(workload->name(), name.c_str());
    }
}

TEST(WorkloadFactoryTest, UnknownNameFatal)
{
    EXPECT_THROW(createWorkload("nonesuch"), common::SimError);
}

TEST(WorkloadPartitionTest, BlockPartitionCoversExactly)
{
    for (std::uint64_t n : {100ull, 101ull, 4096ull}) {
        std::uint64_t covered = 0;
        std::uint64_t prev_end = 0;
        for (std::uint32_t p = 0; p < 4; ++p) {
            auto [begin, end] = Workload::blockPartition(n, 4, p);
            EXPECT_EQ(begin, prev_end);
            covered += end - begin;
            prev_end = end;
        }
        EXPECT_EQ(covered, n);
        EXPECT_EQ(prev_end, n);
    }
}

TEST(WorkloadPartitionTest, OwnerOfInvertsPartition)
{
    const std::uint64_t n = 1003;
    for (std::uint32_t p = 0; p < 4; ++p) {
        auto [begin, end] = Workload::blockPartition(n, 4, p);
        for (std::uint64_t i = begin; i < end; i += 97)
            EXPECT_EQ(Workload::ownerOf(i, n, 4), p);
        EXPECT_EQ(Workload::ownerOf(end - 1, n, 4), p);
    }
}
