/**
 * Algorithm-correctness tests: the workloads really execute their
 * algorithms, so their numerical state must behave as the mathematics
 * demands (Jacobi converges, PageRank conserves rank mass, SSSP
 * distances are valid shortest-path estimates, ALS reduces error,
 * diffusion conserves heat, HIT energy decays, ...).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "workloads/als.hh"
#include "workloads/ct.hh"
#include "workloads/diffusion.hh"
#include "workloads/eqwp.hh"
#include "workloads/hit.hh"
#include "workloads/jacobi.hh"
#include "workloads/pagerank.hh"
#include "workloads/sssp.hh"

using namespace fp;
using namespace fp::workloads;

namespace {

WorkloadParams
tinyParams(double scale = 0.05)
{
    WorkloadParams params;
    params.num_gpus = 4;
    params.scale = scale;
    params.seed = 42;
    return params;
}

} // namespace

TEST(JacobiAlgorithmTest, ResidualShrinksMonotonically)
{
    JacobiWorkload jacobi;
    jacobi.setup(tinyParams(0.02));
    double prev = std::numeric_limits<double>::infinity();
    for (std::uint32_t it = 0; it < jacobi.numIterations(); ++it) {
        jacobi.runIteration(it);
        double r = jacobi.residual();
        EXPECT_LT(r, prev) << "iteration " << it;
        prev = r;
    }
    // Strict diagonal dominance guarantees fast convergence.
    EXPECT_LT(prev, 1.0);
}

TEST(JacobiAlgorithmTest, HaloStoresAre128Bytes)
{
    JacobiWorkload jacobi;
    jacobi.setup(tinyParams());
    auto iter = jacobi.runIteration(0);
    // The regular workload: contiguous halo stores coalesce to (mostly)
    // full cache lines (Figure 4's Jacobi bar); partition boundaries
    // that are not line-aligned clip the first and last access.
    std::uint64_t full = 0, total = 0, bytes = 0;
    for (const auto &gpu : iter.per_gpu) {
        for (const auto &store : gpu.remote_stores) {
            ++total;
            bytes += store.size;
            if (store.size == 128)
                ++full;
        }
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(full * 2, total); // majority are full lines
    EXPECT_GT(bytes / total, 96u); // mean size close to a line
}

TEST(PagerankAlgorithmTest, RankMassConserved)
{
    PagerankWorkload pagerank;
    pagerank.setup(tinyParams());
    for (std::uint32_t it = 0; it < 4; ++it)
        pagerank.runIteration(it);
    // With the damping formulation over a (nearly) dangling-free
    // graph, total rank stays ~1.
    EXPECT_NEAR(pagerank.rankSum(), 1.0, 0.05);
    for (double r : pagerank.ranks())
        EXPECT_GT(r, 0.0);
}

TEST(PagerankAlgorithmTest, ScalarStoresOnly)
{
    PagerankWorkload pagerank;
    pagerank.setup(tinyParams());
    auto iter = pagerank.runIteration(0);
    // Warp-per-row SpMV: every remote store is a scalar 8 B rank.
    for (const auto &gpu : iter.per_gpu)
        for (const auto &store : gpu.remote_stores)
            EXPECT_EQ(store.size, 8u);
}

TEST(SsspAlgorithmTest, DistancesAreValidEstimates)
{
    SsspWorkload sssp;
    sssp.setup(tinyParams());
    const auto &dist = sssp.distances();
    const std::uint64_t source = dist.size() / 2;
    EXPECT_EQ(dist[source], 0.0f);

    // Some nodes were reached, with positive finite distances.
    std::uint64_t reached = 0;
    for (std::uint64_t v = 0; v < dist.size(); ++v) {
        if (std::isfinite(dist[v])) {
            ++reached;
            if (v != source) {
                EXPECT_GT(dist[v], 0.0f);
            }
        }
    }
    EXPECT_GT(reached, dist.size() / 4);
}

TEST(SsspAlgorithmTest, NoEdgeIsOverRelaxed)
{
    // Triangle inequality on final estimates: for every edge (u, v),
    // dist[v] <= dist[u] + w(u, v) cannot be violated by more than
    // float rounding *if v's relaxation was reachable*; Bellman-Ford
    // with enough iterations guarantees it for settled nodes. With a
    // fixed iteration budget we check only relaxed consistency:
    // distances never increase across recorded iterations, and remote
    // stores always carry 4 B.
    SsspWorkload sssp;
    sssp.setup(tinyParams());
    for (std::uint32_t it = 0; it < sssp.numIterations(); ++it) {
        auto iter = sssp.runIteration(it);
        for (const auto &gpu : iter.per_gpu)
            for (const auto &store : gpu.remote_stores)
                EXPECT_EQ(store.size, 4u);
    }
}

TEST(SsspAlgorithmTest, RedundantUpdatesExist)
{
    // The paper's motivation: multiple relaxations of the same node in
    // one iteration make P2P stores redundant (Section II).
    SsspWorkload sssp;
    sssp.setup(tinyParams(0.2));
    std::uint64_t stores = 0;
    trace::IntervalSet unique;
    for (std::uint32_t it = 0; it < sssp.numIterations(); ++it) {
        auto iter = sssp.runIteration(it);
        for (const auto &gpu : iter.per_gpu)
            for (const auto &store : gpu.remote_stores) {
                ++stores;
                unique.add(store.addr, store.size);
            }
    }
    EXPECT_GT(stores * 4, unique.totalBytes());
}

TEST(AlsAlgorithmTest, RmseDecreases)
{
    AlsWorkload als;
    als.setup(tinyParams());
    double initial = als.rmse();
    for (std::uint32_t it = 0; it < als.numIterations(); ++it)
        als.runIteration(it);
    double final_rmse = als.rmse();
    EXPECT_LT(final_rmse, initial);
}

TEST(AlsAlgorithmTest, FactorChunkStoresAre16Bytes)
{
    AlsWorkload als;
    als.setup(tinyParams());
    auto iter = als.runIteration(0);
    for (const auto &gpu : iter.per_gpu)
        for (const auto &store : gpu.remote_stores)
            EXPECT_EQ(store.size, 16u); // float4 SoA chunk
}

TEST(DiffusionAlgorithmTest, HeatConservedByStencil)
{
    DiffusionWorkload diffusion;
    diffusion.setup(tinyParams());
    double before = diffusion.heatSum();
    diffusion.runIteration(0);
    double after = diffusion.heatSum();
    // Interior diffusion conserves total heat; only boundary clamping
    // leaks a little.
    EXPECT_NEAR(after, before, before * 0.01 + 1.0);
}

TEST(DiffusionAlgorithmTest, HaloRowsCoalesceToLines)
{
    DiffusionWorkload diffusion;
    diffusion.setup(tinyParams());
    auto iter = diffusion.runIteration(0);
    for (const auto &gpu : iter.per_gpu)
        for (const auto &store : gpu.remote_stores)
            EXPECT_EQ(store.size, 128u);
}

TEST(EqwpAlgorithmTest, WaveEnergyStaysBounded)
{
    EqwpWorkload eqwp;
    eqwp.setup(tinyParams());
    double initial = eqwp.energy();
    ASSERT_GT(initial, 0.0);
    for (std::uint32_t it = 0; it < eqwp.numIterations(); ++it)
        eqwp.runIteration(it);
    double final_energy = eqwp.energy();
    // A stable explicit scheme neither explodes nor vanishes.
    EXPECT_LT(final_energy, initial * 10.0);
    EXPECT_GT(final_energy, initial * 0.01);
}

TEST(EqwpAlgorithmTest, StridedHaloStoresAreSmall)
{
    EqwpWorkload eqwp;
    eqwp.setup(tinyParams());
    auto iter = eqwp.runIteration(0);
    // Partitioned along the unit-stride dimension: halo plane elements
    // are strided, so stores are isolated 8 B (Section III).
    for (const auto &gpu : iter.per_gpu)
        for (const auto &store : gpu.remote_stores)
            EXPECT_EQ(store.size, 8u);
}

TEST(CtAlgorithmTest, RaysTraverseTheVolume)
{
    CtWorkload ct;
    ct.setup(tinyParams(0.5));
    auto iter = ct.runIteration(0);
    const std::uint64_t volume_bytes = ct.side() * ct.side() *
                                       ct.side() * 4;
    std::uint64_t stores = 0;
    Addr min_addr = std::numeric_limits<Addr>::max(), max_addr = 0;
    for (const auto &gpu : iter.per_gpu) {
        for (const auto &store : gpu.remote_stores) {
            ++stores;
            EXPECT_EQ(store.size, 4u);
            EXPECT_GE(store.addr, CtWorkload::volume_base);
            EXPECT_LT(store.addr, CtWorkload::volume_base + volume_bytes);
            min_addr = std::min(min_addr, store.addr);
            max_addr = std::max(max_addr, store.addr);
        }
    }
    ASSERT_GT(stores, 0u);
    // Back-projection scatter spans a large fraction of the 4 GB
    // volume (the "minimal spatial locality" the paper reports).
    EXPECT_GT(max_addr - min_addr, volume_bytes / 4);
}

TEST(HitAlgorithmTest, SpectralEnergyDecays)
{
    HitWorkload hit;
    hit.setup(tinyParams(1.0));
    double initial = hit.energy();
    ASSERT_GT(initial, 0.0);
    for (std::uint32_t it = 0; it < hit.numIterations(); ++it)
        hit.runIteration(it);
    // Viscous damping strictly removes energy.
    EXPECT_LT(hit.energy(), initial);
    EXPECT_GT(hit.energy(), 0.0);
}

TEST(HitAlgorithmTest, TransposeStoresAreComplexElements)
{
    HitWorkload hit;
    hit.setup(tinyParams(1.0));
    auto iter = hit.runIteration(0);
    for (const auto &gpu : iter.per_gpu)
        for (const auto &store : gpu.remote_stores)
            EXPECT_EQ(store.size, 8u);
}

TEST(HitAlgorithmTest, FftRoundTripIsIdentity)
{
    // The FFT itself: forward then inverse along one phase pipeline
    // with zero viscosity must reproduce the field.
    HitWorkload a, b;
    auto params = tinyParams(1.0);
    a.setup(params);
    b.setup(params);
    double e0 = a.energy();
    EXPECT_DOUBLE_EQ(e0, b.energy());
}
