/** Unit tests for the synthetic dataset generators. */

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/datasets.hh"

using namespace fp;
using namespace fp::workloads;

TEST(BandedGraphTest, EdgesStayWithinBand)
{
    const std::uint64_t n = 4096, bw = 256;
    Graph g = makeBandedGraph(n, 8, bw, 7);
    EXPECT_EQ(g.num_nodes, n);
    EXPECT_GT(g.numEdges(), n * 4); // close to degree 8 minus dedup
    for (std::uint64_t u = 0; u < n; ++u) {
        for (std::uint64_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
            std::uint64_t v = g.targets[e];
            EXPECT_NE(v, u);
            std::uint64_t dist = v > u ? v - u : u - v;
            EXPECT_LE(dist, bw) << "edge " << u << "->" << v;
        }
    }
}

TEST(BandedGraphTest, CsrWellFormedAndSorted)
{
    Graph g = makeBandedGraph(1024, 6, 128, 11);
    ASSERT_EQ(g.offsets.size(), g.num_nodes + 1);
    EXPECT_EQ(g.offsets.front(), 0u);
    EXPECT_EQ(g.offsets.back(), g.numEdges());
    for (std::uint64_t u = 0; u < g.num_nodes; ++u) {
        EXPECT_LE(g.offsets[u], g.offsets[u + 1]);
        for (std::uint64_t e = g.offsets[u] + 1; e < g.offsets[u + 1];
             ++e)
            EXPECT_LT(g.targets[e - 1], g.targets[e]); // sorted, unique
    }
}

TEST(BandedGraphTest, DeterministicForSeed)
{
    Graph a = makeBandedGraph(512, 4, 64, 99);
    Graph b = makeBandedGraph(512, 4, 64, 99);
    EXPECT_EQ(a.targets, b.targets);
    Graph c = makeBandedGraph(512, 4, 64, 100);
    EXPECT_NE(a.targets, c.targets);
}

TEST(WebGraphTest, CommunityLocalityDominates)
{
    const std::uint64_t n = 8192, community = 512;
    Graph g = makeWebGraph(n, community, 6, 2, 5);
    std::uint64_t intra = 0, inter = 0;
    for (std::uint64_t u = 0; u < n; ++u) {
        for (std::uint64_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
            if (g.targets[e] / community == u / community)
                ++intra;
            else
                ++inter;
        }
    }
    EXPECT_GT(intra, inter); // mostly local, some long-range
    EXPECT_GT(inter, 0u);
}

TEST(WebGraphTest, HeavyTailedInDegree)
{
    const std::uint64_t n = 8192;
    Graph g = makeWebGraph(n, 512, 4, 4, 21);
    std::vector<std::uint64_t> in_degree(n, 0);
    for (std::uint32_t v : g.targets)
        ++in_degree[v];
    std::uint64_t max_in = 0, total = 0;
    for (auto d : in_degree) {
        max_in = std::max(max_in, d);
        total += d;
    }
    double mean = static_cast<double>(total) / static_cast<double>(n);
    // Hub nodes attract far more than the average in-degree.
    EXPECT_GT(static_cast<double>(max_in), 8.0 * mean);
}

TEST(GeometricGraphTest, DistanceDecay)
{
    const std::uint64_t n = 16384;
    Graph g = makeGeometricGraph(n, 12, 3);
    std::uint64_t near = 0, far = 0;
    for (std::uint64_t u = 0; u < n; ++u) {
        for (std::uint64_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
            std::uint64_t v = g.targets[e];
            std::uint64_t dist = v > u ? v - u : u - v;
            if (dist <= n / 64)
                ++near;
            else
                ++far;
        }
    }
    EXPECT_GT(near, 2 * far); // geometric locality
}

TEST(BandedSystemTest, StrictDiagonalDominance)
{
    BandedSystem sys = makeBandedSystem(1000, 16, 42);
    for (std::uint64_t i : {0ull, 17ull, 500ull, 999ull}) {
        double diag = std::abs(sys.coeff(i, 0));
        double off = 0.0;
        for (std::int64_t k = -16; k <= 16; ++k)
            if (k != 0)
                off += std::abs(sys.coeff(i, k));
        EXPECT_GT(diag, off) << "row " << i;
    }
}

TEST(BandedSystemTest, ZeroOutsideMatrix)
{
    BandedSystem sys = makeBandedSystem(100, 8, 1);
    EXPECT_EQ(sys.coeff(0, -1), 0.0);
    EXPECT_EQ(sys.coeff(99, 1), 0.0);
    EXPECT_NE(sys.coeff(50, -8), 0.0);
}

TEST(BandedSystemTest, DeterministicCoefficients)
{
    BandedSystem a = makeBandedSystem(100, 8, 7);
    BandedSystem b = makeBandedSystem(100, 8, 7);
    for (std::uint64_t i = 0; i < 100; i += 13)
        for (std::int64_t k = -8; k <= 8; ++k)
            EXPECT_EQ(a.coeff(i, k), b.coeff(i, k));
    EXPECT_EQ(a.rhs(42), b.rhs(42));
}
