/**
 * @file
 * Flight-recorder unit tests: capacity rounding, ring wraparound at
 * small capacities, per-kind accounting, EventQueue observer
 * integration, and the InvariantRegistry bridge that gives
 * FP_INVARIANT failures their "while executing ..." context.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariant.hh"
#include "common/event_queue.hh"
#include "obs/flight_recorder.hh"

using namespace fp;
using obs::FlightKind;
using obs::FlightRecorder;

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(FlightRecorder(0).capacity(), 2u);
    EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
    EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
    EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
    EXPECT_EQ(FlightRecorder(4).capacity(), 4u);
    EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
    EXPECT_EQ(FlightRecorder().capacity(),
              FlightRecorder::default_capacity);
}

TEST(FlightRecorder, SnapshotBeforeWrapKeepsEveryRecordInOrder)
{
    FlightRecorder recorder(8);
    recorder.record(FlightKind::note, 10, "first");
    recorder.record(FlightKind::note, 20, "second");
    recorder.record(FlightKind::note, 30, "third");

    EXPECT_EQ(recorder.recordsWritten(), 3u);
    auto records = recorder.snapshot();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].seq, 1u);
    EXPECT_STREQ(records[0].label, "first");
    EXPECT_EQ(records[1].tick, 20u);
    EXPECT_EQ(records[2].seq, 3u);
    EXPECT_STREQ(records[2].label, "third");
}

TEST(FlightRecorder, RingWrapsAtSmallCapacity)
{
    // Capacity 4: after ten records only the last four survive, and
    // the snapshot walks them oldest-first with monotonic sequences.
    FlightRecorder recorder(4);
    static const char *const labels[] = {"r0", "r1", "r2", "r3", "r4",
                                         "r5", "r6", "r7", "r8", "r9"};
    for (std::uint64_t i = 0; i < 10; ++i)
        recorder.record(FlightKind::note, 100 + i, labels[i], i);

    EXPECT_EQ(recorder.recordsWritten(), 10u);
    EXPECT_EQ(recorder.lastTick(), 109u);

    auto records = recorder.snapshot();
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].seq, 7u + i);
        EXPECT_EQ(records[i].tick, 106u + i);
        EXPECT_STREQ(records[i].label, labels[6 + i]);
        EXPECT_EQ(records[i].a, 6u + i);
    }
}

TEST(FlightRecorder, WrapIsStableAcrossManyGenerations)
{
    // The mask arithmetic must hold far past the first wrap: a tiny
    // ring hammered for thousands of records still yields exactly
    // `capacity` decodable slots with contiguous tail sequences.
    FlightRecorder recorder(2);
    for (std::uint64_t i = 1; i <= 5000; ++i)
        recorder.record(FlightKind::note, i, "spin", i);
    auto records = recorder.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].seq, 4999u);
    EXPECT_EQ(records[1].seq, 5000u);
    EXPECT_EQ(records[1].a, 5000u);
}

TEST(FlightRecorder, KindCountsAndRwqEntriesAccumulate)
{
    FlightRecorder recorder(4);
    recorder.record(FlightKind::rwq_flush, 1, "release", 3, 1);
    recorder.record(FlightKind::rwq_flush, 2, "capacity", 5, 2);
    recorder.record(FlightKind::fabric_inject, 3, "fabric.inject", 64,
                    1);
    recorder.record(FlightKind::note, 4, "marker");

    EXPECT_EQ(recorder.kindCount(FlightKind::rwq_flush), 2u);
    EXPECT_EQ(recorder.kindCount(FlightKind::fabric_inject), 1u);
    EXPECT_EQ(recorder.kindCount(FlightKind::note), 1u);
    EXPECT_EQ(recorder.kindCount(FlightKind::event), 0u);
    // rwq_flush's `a` payload is the entry count; the rollup sums it.
    EXPECT_EQ(recorder.rwqEntriesFlushed(), 8u);
}

TEST(FlightRecorder, ObservesEventQueueAndPublishesCounters)
{
    common::EventQueue queue;
    FlightRecorder recorder(16);
    queue.addObserver(&recorder);
    recorder.beginRun(&queue);

    int fired = 0;
    queue.schedule([&fired]() { ++fired; }, 10,
                   common::Event::prio_default, "unit.alpha");
    queue.schedule([&fired]() { ++fired; }, 20,
                   common::Event::prio_default, "unit.beta");
    queue.run();
    recorder.endRun();
    queue.removeObserver(&recorder);

    EXPECT_EQ(fired, 2);
    EXPECT_EQ(recorder.eventsSeen(), 2u);
    EXPECT_STREQ(recorder.lastEventLabel(), "unit.beta");
    EXPECT_EQ(recorder.lastTick(), 20u);
    EXPECT_EQ(recorder.queueProcessed(), 2u);
    EXPECT_EQ(recorder.queueScheduled(), 2u);
    EXPECT_EQ(recorder.queueDepth(), 0u);
    EXPECT_GE(recorder.queuePeakDepth(), 2u);
    // Two events plus the begin/end run markers.
    EXPECT_EQ(recorder.kindCount(FlightKind::event), 2u);
    EXPECT_EQ(recorder.kindCount(FlightKind::note), 2u);

    auto records = recorder.snapshot();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_STREQ(records.front().label, "recorder.begin_run");
    EXPECT_STREQ(records[1].label, "unit.alpha");
    EXPECT_STREQ(records.back().label, "recorder.end_run");
}

namespace {

/** Installs the registry bridge and guarantees cleanup + reset. */
class FlightRecorderInvariantTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        check::InvariantRegistry::instance().reset();
        recorder.installInvariantHooks();
    }

    void TearDown() override
    {
        recorder.removeInvariantHooks();
        check::InvariantRegistry::instance().reset();
    }

    FlightRecorder recorder{16};
};

} // namespace

TEST_F(FlightRecorderInvariantTest, EvaluationsBecomeRingRecords)
{
    check::InvariantRegistry::instance().recordCheck("unit-invariant");
    check::InvariantRegistry::instance().recordCheck("unit-invariant");

    EXPECT_EQ(recorder.kindCount(FlightKind::invariant), 2u);
    auto records = recorder.snapshot();
    ASSERT_FALSE(records.empty());
    EXPECT_EQ(records.back().kind, FlightKind::invariant);
    EXPECT_STREQ(records.back().label, "unit-invariant");
}

TEST_F(FlightRecorderInvariantTest, FailureCarriesEventContext)
{
    // Drive one labeled event through a queue the recorder observes so
    // the ring knows "what the simulator was doing"...
    common::EventQueue queue;
    queue.addObserver(&recorder);
    recorder.beginRun(&queue);
    queue.schedule([]() {}, 42, common::Event::prio_default,
                   "unit.ctx_event");
    queue.run();
    queue.removeObserver(&recorder);

    // ... then trip an invariant: the thrown InvariantViolation names
    // the invariant and its message carries tick + event-label context
    // from the ring (docs/run_health.md).
    try {
        check::InvariantRegistry::instance().fail(
            "ctx-test", __FILE__, __LINE__, "intentional");
        FAIL() << "fail() must throw";
    } catch (const check::InvariantViolation &err) {
        EXPECT_STREQ(err.invariantName(), "ctx-test");
        std::string message = err.what();
        EXPECT_NE(message.find("[ctx-test]"), std::string::npos)
            << message;
        EXPECT_NE(message.find(" while executing 'unit.ctx_event'"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("at tick 42"), std::string::npos)
            << message;
    }
    EXPECT_EQ(check::InvariantRegistry::instance().failures(), 1u);
}

TEST_F(FlightRecorderInvariantTest, RemovingHooksDropsContext)
{
    recorder.removeInvariantHooks();
    try {
        check::InvariantRegistry::instance().fail(
            "bare-test", __FILE__, __LINE__, "intentional");
        FAIL() << "fail() must throw";
    } catch (const check::InvariantViolation &err) {
        std::string message = err.what();
        EXPECT_EQ(message.find(" while executing "), std::string::npos)
            << message;
    }
}
