/**
 * Unit tests for the latency attribution collector (obs/latency.hh):
 * stage arithmetic, milestone validation, breakdown routing, and the
 * flush-reason label table that obs duplicates from finepack.
 */

#include <gtest/gtest.h>

#include "finepack/remote_write_queue.hh"
#include "obs/latency.hh"

using namespace fp;
using namespace fp::obs;

namespace {

MsgTimestamps
goodTimestamps()
{
    MsgTimestamps t;
    t.created = 1000;
    t.tx_start = 1200;
    t.tx_end = 1500;
    t.flush_reason = 3; // release
    return t;
}

} // namespace

TEST(LatencyCollectorTest, RecordsMessageStages)
{
    LatencyCollector collector;
    collector.beginRun(2);

    MsgTimestamps t = goodTimestamps();
    StoreStamp stamps[2] = {{800, 4}, {900, 16}};
    collector.record(GpuId{1}, t, /*arrival=*/2000, /*commit=*/2400,
                     stamps, 2);

    EXPECT_EQ(collector.messages(), 1u);
    EXPECT_EQ(collector.stores(), 2u);
    EXPECT_EQ(collector.violations(), 0u);

    // serialization = tx_end - created, propagation = arrival - tx_end,
    // ingress_wait = commit - arrival.
    EXPECT_EQ(collector.serialization().total(), 1u);
    EXPECT_DOUBLE_EQ(collector.serialization().min(), 500.0);
    EXPECT_DOUBLE_EQ(collector.propagation().min(), 500.0);
    EXPECT_DOUBLE_EQ(collector.ingressWait().min(), 400.0);

    // Per-store: residency = created - issue, total = commit - issue.
    EXPECT_EQ(collector.residency().total(), 2u);
    EXPECT_DOUBLE_EQ(collector.residency().min(), 100.0);
    EXPECT_DOUBLE_EQ(collector.residency().max(), 200.0);
    EXPECT_EQ(collector.total().total(), 2u);
    EXPECT_DOUBLE_EQ(collector.total().min(), 1500.0);
    EXPECT_DOUBLE_EQ(collector.total().max(), 1600.0);
}

TEST(LatencyCollectorTest, EmptyStampsContributeMessageStagesOnly)
{
    LatencyCollector collector;
    collector.beginRun(2);
    collector.record(GpuId{0}, goodTimestamps(), 2000, 2400, nullptr, 0);
    EXPECT_EQ(collector.messages(), 1u);
    EXPECT_EQ(collector.stores(), 0u);
    EXPECT_EQ(collector.residency().total(), 0u);
    EXPECT_EQ(collector.serialization().total(), 1u);
}

TEST(LatencyCollectorTest, RejectsMissingAndNonMonotonicMilestones)
{
    LatencyCollector collector;
    collector.beginRun(1);

    MsgTimestamps unstamped; // everything no_stamp
    collector.record(GpuId{0}, unstamped, 2000, 2400, nullptr, 0);
    EXPECT_EQ(collector.messages(), 0u);
    EXPECT_EQ(collector.violations(), 1u);

    MsgTimestamps backwards = goodTimestamps();
    backwards.tx_end = backwards.created - 1;
    collector.record(GpuId{0}, backwards, 2000, 2400, nullptr, 0);
    EXPECT_EQ(collector.messages(), 0u);
    EXPECT_EQ(collector.violations(), 2u);

    // Commit before arrival.
    collector.record(GpuId{0}, goodTimestamps(), 2000, 1999, nullptr, 0);
    EXPECT_EQ(collector.violations(), 3u);

    // A bad store stamp drops the store, not the message.
    StoreStamp late{goodTimestamps().created + 1, 4};
    collector.record(GpuId{0}, goodTimestamps(), 2000, 2400, &late, 1);
    EXPECT_EQ(collector.messages(), 1u);
    EXPECT_EQ(collector.stores(), 0u);
    EXPECT_EQ(collector.violations(), 4u);
}

TEST(LatencyCollectorTest, BeginRunResets)
{
    LatencyCollector collector;
    collector.beginRun(4);
    StoreStamp stamp{800, 8};
    collector.record(GpuId{3}, goodTimestamps(), 2000, 2400, &stamp, 1);
    EXPECT_EQ(collector.messages(), 1u);

    collector.beginRun(2);
    EXPECT_EQ(collector.messages(), 0u);
    EXPECT_EQ(collector.stores(), 0u);
    EXPECT_EQ(collector.total().total(), 0u);
}

TEST(LatencySizeClassTest, BoundariesAndNames)
{
    EXPECT_EQ(latencySizeClass(1), 0u);
    EXPECT_EQ(latencySizeClass(4), 0u);
    EXPECT_EQ(latencySizeClass(5), 1u);
    EXPECT_EQ(latencySizeClass(8), 1u);
    EXPECT_EQ(latencySizeClass(16), 2u);
    EXPECT_EQ(latencySizeClass(32), 3u);
    EXPECT_EQ(latencySizeClass(64), 4u);
    EXPECT_EQ(latencySizeClass(128), 5u);
    // Anything larger than a cache line folds into the top class.
    EXPECT_EQ(latencySizeClass(4096), 5u);

    EXPECT_STREQ(latencySizeClassName(0), "le4");
    EXPECT_STREQ(latencySizeClassName(5), "le128");
}

/**
 * obs duplicates the FlushReason label table because it cannot depend
 * on finepack (layering); this pins the two tables together so they
 * cannot drift apart silently.
 */
TEST(FlushReasonNameTest, MatchesFinepackToString)
{
    using finepack::FlushReason;
    const FlushReason reasons[] = {
        FlushReason::window_violation, FlushReason::payload_full,
        FlushReason::entries_full,     FlushReason::release,
        FlushReason::load_conflict,    FlushReason::atomic_conflict,
    };
    ASSERT_EQ(std::size(reasons), flush_reason_count);
    for (FlushReason reason : reasons) {
        EXPECT_STREQ(
            flushReasonName(static_cast<std::uint8_t>(reason)),
            toString(reason))
            << static_cast<int>(reason);
    }
    EXPECT_STREQ(flushReasonName(no_flush_reason), "none");
}
