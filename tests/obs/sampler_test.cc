/**
 * Unit tests for the periodic sampler: sample placement relative to
 * event execution, baseline priming, series export, trace mirroring,
 * and run-to-run determinism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/event_queue.hh"
#include "common/json.hh"
#include "obs/sampler.hh"
#include "obs/trace_event.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::common;
using namespace fp::obs;
using fp::testing::parseJson;

TEST(SamplerTest, IntervalMustBePositive)
{
    EXPECT_THROW(PeriodicSampler(0), fp::common::SimError);
}

TEST(SamplerTest, PumpWithoutTracksJustDrainsTheQueue)
{
    PeriodicSampler sampler(100);
    EventQueue queue;
    int fired = 0;
    queue.schedule([&]() { ++fired; }, 250);
    sampler.pump(queue);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.now(), 250u);
    EXPECT_TRUE(sampler.series().empty());
}

TEST(SamplerTest, SamplesAtEveryBoundaryUpToTheLastEvent)
{
    PeriodicSampler sampler(100);
    sampler.beginRun();

    EventQueue queue;
    double gauge = 0.0;
    sampler.addTrack("gauge", [&]() { return gauge; });

    // The gauge steps to 1 at tick 150 and to 2 at tick 350.
    queue.schedule([&]() { gauge = 1.0; }, 150);
    queue.schedule([&]() { gauge = 2.0; }, 350);
    sampler.pump(queue);

    ASSERT_EQ(sampler.series().size(), 1u);
    const auto &s = sampler.series()[0];
    EXPECT_EQ(s.name, "gauge");
    // Baseline at 0, then boundaries 100..300 (the 300 boundary is
    // <= the tick-350 event, so it samples the pre-event state).
    ASSERT_EQ(s.ticks.size(), 4u);
    EXPECT_EQ(s.ticks[0], 0u);
    EXPECT_EQ(s.ticks[1], 100u);
    EXPECT_EQ(s.ticks[2], 200u);
    EXPECT_EQ(s.ticks[3], 300u);
    EXPECT_DOUBLE_EQ(s.values[0], 0.0);
    EXPECT_DOUBLE_EQ(s.values[1], 0.0); // before the tick-150 event
    EXPECT_DOUBLE_EQ(s.values[2], 1.0);
    EXPECT_DOUBLE_EQ(s.values[3], 1.0); // before the tick-350 event
}

TEST(SamplerTest, RepeatedPumpsContinueOneSeries)
{
    PeriodicSampler sampler(100);
    sampler.beginRun();

    EventQueue queue;
    double gauge = 0.0;
    sampler.addTrack("gauge", [&]() { return gauge; });

    queue.schedule([&]() { gauge = 5.0; }, 120);
    sampler.pump(queue);
    // Second driver iteration: more events on the same queue.
    queue.schedule([&]() { gauge = 9.0; }, 320);
    sampler.pump(queue);

    const auto &s = sampler.series()[0];
    // Baseline 0, boundary 100 from the first pump; 200 and 300 from
    // the second (primed only once).
    ASSERT_EQ(s.ticks.size(), 4u);
    EXPECT_EQ(s.ticks[2], 200u);
    EXPECT_EQ(s.ticks[3], 300u);
    EXPECT_DOUBLE_EQ(s.values[2], 5.0);
    EXPECT_DOUBLE_EQ(s.values[3], 5.0);
}

TEST(SamplerTest, BeginRunDropsSeriesEndRunKeepsThem)
{
    PeriodicSampler sampler(10);
    sampler.beginRun();
    sampler.addTrack("g", []() { return 1.0; });
    sampler.sampleAt(0);
    sampler.endRun();
    // The gauge is gone but the recorded points survive endRun().
    ASSERT_EQ(sampler.series().size(), 1u);
    EXPECT_EQ(sampler.series()[0].values.size(), 1u);
    sampler.sampleAt(10); // no gauges left: a no-op
    EXPECT_EQ(sampler.series()[0].values.size(), 1u);

    sampler.beginRun();
    EXPECT_TRUE(sampler.series().empty());
}

TEST(SamplerTest, MirrorsSamplesIntoTraceCounters)
{
    PeriodicSampler sampler(100);
    TraceSink sink;
    sampler.attachTraceSink(&sink);
    sampler.beginRun();
    sampler.addTrack("gpu0.rwq.entries[1]", []() { return 3.0; });

    EventQueue queue;
    queue.schedule([]() {}, 100);
    sampler.pump(queue);

    std::ostringstream os;
    sink.write(os);
    auto events = parseJson(os.str()).at("traceEvents");
    ASSERT_EQ(events.array.size(), 2u); // baseline + tick-100 boundary
    for (const auto &e : events.array) {
        EXPECT_EQ(e.at("ph").string, "C");
        EXPECT_EQ(e.at("name").string, "gpu0.rwq.entries[1]");
        EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 3.0);
    }
}

TEST(SamplerTest, DumpJsonMatchesSeries)
{
    PeriodicSampler sampler(50);
    sampler.beginRun();
    sampler.addTrack("a", []() { return 2.0; });
    sampler.sampleAt(0);
    sampler.sampleAt(50);

    std::ostringstream os;
    JsonWriter json(os);
    sampler.dumpJson(json);
    auto doc = parseJson(os.str());
    EXPECT_DOUBLE_EQ(doc.at("interval_ticks").number, 50.0);
    const auto &track = doc.at("tracks").at("a");
    ASSERT_EQ(track.at("ticks").array.size(), 2u);
    EXPECT_DOUBLE_EQ(track.at("ticks").array[1].number, 50.0);
    EXPECT_DOUBLE_EQ(track.at("values").array[0].number, 2.0);
}

TEST(SamplerTest, IdenticalRunsProduceIdenticalSeries)
{
    auto run = [](PeriodicSampler &sampler) {
        sampler.beginRun();
        EventQueue queue;
        double load = 0.0;
        sampler.addTrack("load", [&]() { return load; });
        // A little event cascade: each event reschedules a follower.
        for (Tick t = 37; t < 1000; t += 91)
            queue.schedule([&load, t]() {
                load = static_cast<double>(t % 13);
            }, t);
        sampler.pump(queue);
        sampler.endRun();
    };

    PeriodicSampler first(64);
    PeriodicSampler second(64);
    run(first);
    run(second);

    ASSERT_EQ(first.series().size(), second.series().size());
    EXPECT_EQ(first.series()[0].ticks, second.series()[0].ticks);
    EXPECT_EQ(first.series()[0].values, second.series()[0].values);
    EXPECT_GE(first.series()[0].ticks.size(), 2u);
}
