/**
 * Unit tests for obs::FlowCollector: window accounting, the
 * width-doubling merge, contention attribution (occupant charging and
 * the self-charge fallback), conservation arithmetic, and the
 * deterministic sorted-key JSON emission.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.hh"
#include "obs/flow.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::obs;
using fp::testing::parseJson;

namespace {

FlowCollector::LinkTransmit
transmit(std::uint32_t link, GpuId src, GpuId dst, Tick enqueued,
         Tick start, Tick tx_ticks, std::uint64_t wire_bytes)
{
    FlowCollector::LinkTransmit tx;
    tx.link = link;
    tx.src = src;
    tx.dst = dst;
    tx.enqueued = enqueued;
    tx.start = start;
    tx.tx_ticks = tx_ticks;
    tx.wire_bytes = wire_bytes;
    tx.payload_bytes = wire_bytes;
    tx.data_bytes = wire_bytes;
    return tx;
}

std::string
dump(const FlowCollector &flows)
{
    std::ostringstream os;
    common::JsonWriter json(os);
    flows.dumpJson(json);
    return os.str();
}

} // namespace

TEST(FlowCollectorTest, WindowAccountingSplitsAcrossBoundaries)
{
    FlowCollector flows(100); // 100-tick windows
    flows.beginRun(2);
    std::uint32_t up = flows.registerLink("up0", //
                                          FlowCollector::LinkKind::uplink, 0);

    // Serialization spans [50, 250): 50 ticks in window 0, 100 in
    // window 1, 50 in window 2. Start (tick 50) bins msgs/bytes in
    // window 0 only.
    flows.recordTransmit(transmit(up, 0, 1, 50, 50, 200, 640));
    flows.endRun(300);

    const auto &link = flows.links()[up];
    ASSERT_EQ(link.windows.size(), 3u);
    EXPECT_EQ(link.windows[0].busy_ticks, 50u);
    EXPECT_EQ(link.windows[1].busy_ticks, 100u);
    EXPECT_EQ(link.windows[2].busy_ticks, 50u);
    EXPECT_EQ(link.windows[0].msgs, 1u);
    EXPECT_EQ(link.windows[0].wire_bytes, 640u);
    EXPECT_EQ(link.windows[1].msgs, 0u);
    EXPECT_EQ(link.busy_ticks, 200u);
    EXPECT_EQ(link.wait_ticks, 0u);
    EXPECT_DOUBLE_EQ(flows.linkUtilization(link), 200.0 / 300.0);
}

TEST(FlowCollectorTest, WindowDoublingConservesTotals)
{
    FlowCollector flows(10); // tiny windows force doubling
    flows.beginRun(2);
    std::uint32_t up = flows.registerLink("up0", //
                                          FlowCollector::LinkKind::uplink, 0);

    // A first message inside the initial budget...
    flows.recordTransmit(transmit(up, 0, 1, 0, 0, 100, 256));
    Tick width_before = flows.windowTicks();
    EXPECT_EQ(width_before, 10u);
    // ... then one far beyond 1024 * 10 ticks, forcing merges.
    flows.recordTransmit(transmit(up, 0, 1, 200000, 200000, 50, 64));
    flows.endRun(200050);

    EXPECT_GT(flows.windowTicks(), width_before);
    const auto &link = flows.links()[up];
    // The budget bound held and nothing was lost in the merges.
    EXPECT_LE(link.windows.size(), 1024u + 1);
    Tick busy = 0;
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
    for (const auto &w : link.windows) {
        busy += w.busy_ticks;
        msgs += w.msgs;
        bytes += w.wire_bytes;
    }
    EXPECT_EQ(busy, link.busy_ticks);
    EXPECT_EQ(msgs, link.msgs);
    EXPECT_EQ(bytes, link.wire_bytes);
}

TEST(FlowCollectorTest, WaitChargedToOccupantFlow)
{
    FlowCollector flows(1000);
    flows.beginRun(3);
    std::uint32_t down = flows.registerLink(
        "down2", FlowCollector::LinkKind::downlink, 2);

    // Flow g0->g2 occupies [0, 100); g1->g2 enqueued at 10 starts at
    // 100 after 90 ticks behind the occupant.
    flows.recordTransmit(transmit(down, 0, 2, 0, 0, 100, 512));
    auto tx = transmit(down, 1, 2, 10, 100, 80, 256);
    tx.have_occupant = true;
    tx.occupant_src = 0;
    tx.occupant_dst = 2;
    flows.recordTransmit(tx);
    flows.endRun(200);

    EXPECT_EQ(flows.flow(0, 2).delay_caused_ticks, 90u);
    EXPECT_EQ(flows.flow(0, 2).delay_suffered_ticks, 0u);
    EXPECT_EQ(flows.flow(1, 2).delay_suffered_ticks, 90u);
    EXPECT_EQ(flows.flow(1, 2).delay_caused_ticks, 0u);
    EXPECT_EQ(flows.flow(1, 2).downlink_wait_ticks, 90u);
    EXPECT_EQ(flows.flow(1, 2).uplink_wait_ticks, 0u);
    EXPECT_EQ(flows.interferenceTicks(0, 1), 90u);
    EXPECT_EQ(flows.interferenceTicks(1, 0), 0u);
    EXPECT_EQ(flows.totalWaitTicks(), 90u);

    const auto &link = flows.links()[down];
    ASSERT_EQ(link.interference.size(), 1u);
    // Keyed (delayer flow index, delayed flow index): 0*3+2 by 1*3+2.
    auto it = link.interference.begin();
    EXPECT_EQ(it->first.first, 2u);
    EXPECT_EQ(it->first.second, 5u);
    EXPECT_EQ(it->second, 90u);
}

TEST(FlowCollectorTest, UnknownOccupantSelfChargesToReconcile)
{
    FlowCollector flows(1000);
    flows.beginRun(2);
    std::uint32_t up = flows.registerLink("up1", //
                                          FlowCollector::LinkKind::uplink, 1);

    // No occupant known (collector attached mid-run): the waiting flow
    // charges itself so matrix total still equals wait_ticks.
    flows.recordTransmit(transmit(up, 1, 0, 0, 40, 60, 128));
    flows.endRun(100);

    EXPECT_EQ(flows.flow(1, 0).delay_suffered_ticks, 40u);
    EXPECT_EQ(flows.flow(1, 0).delay_caused_ticks, 40u);
    EXPECT_EQ(flows.flow(1, 0).uplink_wait_ticks, 40u);
    EXPECT_EQ(flows.interferenceTicks(1, 1), 40u);
    EXPECT_EQ(flows.totalWaitTicks(), 40u);
}

TEST(FlowCollectorTest, ConservationLedgerAndPackingEfficiency)
{
    FlowCollector flows;
    flows.beginRun(2);
    flows.recordInject(0, 1, /*wire=*/100, /*payload=*/80, /*data=*/50,
                       /*stores=*/10);
    flows.recordInject(0, 1, 100, 80, 50, 10);
    flows.recordCommit(0, 1, 100, 50);
    flows.recordCommit(0, 1, 100, 50);
    flows.endRun(1);

    const auto &flow = flows.flow(0, 1);
    EXPECT_EQ(flow.injected_msgs, 2u);
    EXPECT_EQ(flow.injected_wire_bytes, 200u);
    EXPECT_EQ(flow.injected_data_bytes, 100u);
    EXPECT_EQ(flow.packed_stores, 20u);
    EXPECT_EQ(flow.committed_msgs, flow.injected_msgs);
    EXPECT_EQ(flow.committed_wire_bytes, flow.injected_wire_bytes);
    EXPECT_EQ(flow.committed_data_bytes, flow.injected_data_bytes);
    EXPECT_DOUBLE_EQ(flows.packingEfficiency(), 0.5);
    EXPECT_EQ(flows.activeFlows(), 1u);
    EXPECT_FALSE(flows.flow(1, 0).active());
}

TEST(FlowCollectorTest, HottestLinksOrderByBusyThenName)
{
    FlowCollector flows(1000);
    flows.beginRun(2);
    std::uint32_t a = flows.registerLink("b_link", //
                                         FlowCollector::LinkKind::uplink, 0);
    std::uint32_t b = flows.registerLink("a_link", //
                                         FlowCollector::LinkKind::uplink, 1);
    std::uint32_t c = flows.registerLink("c_link", //
                                         FlowCollector::LinkKind::downlink, 0);

    flows.recordTransmit(transmit(a, 0, 1, 0, 0, 50, 64));
    flows.recordTransmit(transmit(b, 1, 0, 0, 0, 50, 64));
    flows.recordTransmit(transmit(c, 0, 1, 0, 0, 200, 64));
    flows.endRun(300);

    auto order = flows.hottestLinks(2);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], c);  // busiest first
    EXPECT_EQ(order[1], b);  // tie broken by name: a_link < b_link
}

TEST(FlowCollectorTest, JsonKeysAreSortedAndDeterministic)
{
    auto drive = [](FlowCollector &flows) {
        flows.beginRun(3);
        // Register links in a deliberately unsorted name order.
        std::uint32_t z = flows.registerLink(
            "up2", FlowCollector::LinkKind::uplink, 2);
        std::uint32_t a = flows.registerLink(
            "down0", FlowCollector::LinkKind::downlink, 0);
        std::uint32_t m = flows.registerLink(
            "up0", FlowCollector::LinkKind::uplink, 0);
        flows.recordInject(2, 0, 100, 80, 60, 4);
        flows.recordInject(0, 1, 50, 40, 30, 2);
        flows.recordTransmit(transmit(z, 2, 0, 0, 0, 100, 100));
        flows.recordTransmit(transmit(m, 0, 1, 0, 0, 50, 50));
        flows.recordTransmit(transmit(a, 2, 0, 0, 20, 30, 100));
        flows.recordCommit(2, 0, 100, 60);
        flows.recordCommit(0, 1, 50, 30);
        flows.endRun(500);
    };

    FlowCollector first, second;
    drive(first);
    drive(second);
    std::string text = dump(first);
    // Byte-identical across identically-driven collectors.
    EXPECT_EQ(text, dump(second));

    // Links and flows emit in lexicographic key order regardless of
    // registration / traffic order.
    EXPECT_LT(text.find("\"down0\""), text.find("\"up0\""));
    EXPECT_LT(text.find("\"up0\""), text.find("\"up2\""));
    EXPECT_LT(text.find("\"g0->g1\""), text.find("\"g2->g0\""));

    auto doc = parseJson(text);
    EXPECT_EQ(doc.at("gpus").number, 3.0);
    EXPECT_EQ(doc.at("totals").at("wait_ticks").number, 20.0);
    EXPECT_EQ(doc.at("totals").at("active_flows").number, 2.0);
    // Inactive flows are omitted.
    EXPECT_EQ(doc.at("flows").object.size(), 2u);
    EXPECT_FALSE(doc.at("flows").has("g1->g0"));
    // 3x3 matrix in index order; self-charge landed on (2, 2).
    ASSERT_EQ(doc.at("matrix").at("delay_ticks").array.size(), 3u);
    EXPECT_EQ(doc.at("matrix").at("delay_ticks").array[2].array[2].number,
              20.0);

    // Per-window utilization stays within [0, 1].
    for (const auto &[name, link] : doc.at("links").object) {
        for (const auto &util : link.at("windows").at("utilization").array) {
            EXPECT_GE(util.number, 0.0) << name;
            EXPECT_LE(util.number, 1.0) << name;
        }
    }
}

TEST(FlowCollectorTest, BeginRunResetsEverything)
{
    FlowCollector flows(10);
    flows.beginRun(2);
    std::uint32_t up = flows.registerLink("up0", //
                                          FlowCollector::LinkKind::uplink, 0);
    flows.recordInject(0, 1, 100, 80, 60, 4);
    flows.recordTransmit(transmit(up, 0, 1, 0, 0, 50000, 100));
    flows.endRun(50000);
    ASSERT_GT(flows.windowTicks(), 10u); // doubling happened

    flows.beginRun(4);
    EXPECT_EQ(flows.numGpus(), 4u);
    EXPECT_EQ(flows.windowTicks(), 10u); // width reset
    EXPECT_EQ(flows.links().size(), 0u);
    EXPECT_EQ(flows.activeFlows(), 0u);
    EXPECT_EQ(flows.totalBusyTicks(), 0u);
    EXPECT_EQ(flows.endTick(), 0u);
}
