/**
 * Unit tests for the Chrome trace-event sink: JSON well-formedness,
 * the ph/ts/pid field contract, tick-to-microsecond conversion, and
 * detail-level gating.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/types.hh"
#include "obs/trace_event.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::obs;
using fp::testing::JsonValue;
using fp::testing::parseJson;

namespace {

JsonValue
renderedEvents(const TraceSink &sink)
{
    std::ostringstream os;
    sink.write(os);
    auto doc = parseJson(os.str());
    return doc.at("traceEvents");
}

} // namespace

TEST(TraceSinkTest, EmptySinkWritesValidDocument)
{
    TraceSink sink;
    auto events = renderedEvents(sink);
    ASSERT_TRUE(events.isArray());
    EXPECT_TRUE(events.array.empty());
    EXPECT_EQ(sink.eventCount(), 0u);
}

TEST(TraceSinkTest, CompleteSpanFields)
{
    TraceSink sink;
    // 3 ns to 5 ns of simulated time: ts 0.003 us, dur 0.002 us.
    sink.complete(1, lane_rwq, "flush", "rwq", 3 * ticks_per_ns,
                  2 * ticks_per_ns, {"entries", 12.0});
    auto events = renderedEvents(sink);
    ASSERT_EQ(events.array.size(), 1u);
    const JsonValue &e = events.array[0];
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("name").string, "flush");
    EXPECT_EQ(e.at("cat").string, "rwq");
    EXPECT_DOUBLE_EQ(e.at("pid").number, 1.0);
    EXPECT_DOUBLE_EQ(e.at("tid").number,
                     static_cast<double>(lane_rwq));
    EXPECT_NEAR(e.at("ts").number, 0.003, 1e-12);
    EXPECT_NEAR(e.at("dur").number, 0.002, 1e-12);
    EXPECT_DOUBLE_EQ(e.at("args").at("entries").number, 12.0);
}

TEST(TraceSinkTest, InstantEventHasThreadScope)
{
    TraceSink sink;
    sink.instant(2, lane_packetizer, "packet", "packetizer",
                 7 * ticks_per_us);
    auto events = renderedEvents(sink);
    ASSERT_EQ(events.array.size(), 1u);
    const JsonValue &e = events.array[0];
    EXPECT_EQ(e.at("ph").string, "i");
    EXPECT_EQ(e.at("s").string, "t");
    EXPECT_NEAR(e.at("ts").number, 7.0, 1e-9);
}

TEST(TraceSinkTest, CounterEventCarriesTrackValue)
{
    TraceSink sink;
    sink.counter(1, "gpu0.rwq.entries[1]", 2 * ticks_per_us, 48.0);
    auto events = renderedEvents(sink);
    ASSERT_EQ(events.array.size(), 1u);
    const JsonValue &e = events.array[0];
    EXPECT_EQ(e.at("ph").string, "C");
    EXPECT_EQ(e.at("name").string, "gpu0.rwq.entries[1]");
    EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 48.0);
}

TEST(TraceSinkTest, MetadataNamesProcessesAndThreads)
{
    TraceSink sink;
    sink.processName(1, "gpu0");
    sink.threadName(1, lane_rwq, "rwq");
    auto events = renderedEvents(sink);
    ASSERT_EQ(events.array.size(), 2u);
    const JsonValue &proc = events.array[0];
    EXPECT_EQ(proc.at("ph").string, "M");
    EXPECT_EQ(proc.at("name").string, "process_name");
    EXPECT_EQ(proc.at("args").at("name").string, "gpu0");
    const JsonValue &thread = events.array[1];
    EXPECT_EQ(thread.at("name").string, "thread_name");
    EXPECT_EQ(thread.at("args").at("name").string, "rwq");
    EXPECT_DOUBLE_EQ(thread.at("tid").number,
                     static_cast<double>(lane_rwq));
}

TEST(TraceSinkTest, ArgsWithNullKeysAreDropped)
{
    TraceSink sink;
    sink.instant(0, lane_main, "bare", "phase", 0);
    auto events = renderedEvents(sink);
    const JsonValue &e = events.array[0];
    // No args were passed; either the member is absent or empty.
    if (e.has("args")) {
        EXPECT_TRUE(e.at("args").object.empty());
    }
}

TEST(TraceSinkTest, DetailLevels)
{
    TraceSink flush_sink(TraceDetail::flush);
    EXPECT_EQ(flush_sink.detail(), TraceDetail::flush);
    EXPECT_FALSE(flush_sink.full());

    TraceSink full_sink(TraceDetail::full);
    EXPECT_TRUE(full_sink.full());

    EXPECT_STREQ(toString(TraceDetail::off), "off");
    EXPECT_STREQ(toString(TraceDetail::flush), "flush");
    EXPECT_STREQ(toString(TraceDetail::full), "full");
}

TEST(TraceSinkTest, GpuPidsStartAfterSimPid)
{
    EXPECT_EQ(trace_pid_sim, 0u);
    EXPECT_EQ(tracePidGpu(0), 1u);
    EXPECT_EQ(tracePidGpu(3), 4u);
}

TEST(TraceSinkTest, ManyEventsStayWellFormed)
{
    TraceSink sink;
    for (Tick t = 0; t < 100; ++t) {
        sink.complete(1, lane_main, "span", "phase", t * ticks_per_ns,
                      ticks_per_ns, {"i", static_cast<double>(t)});
        sink.counter(1, "track", t * ticks_per_ns,
                     static_cast<double>(t % 7));
    }
    auto events = renderedEvents(sink);
    ASSERT_EQ(events.array.size(), 200u);
    // Timestamps of the spans must be monotone in emission order.
    double last_ts = -1.0;
    for (const auto &e : events.array) {
        if (e.at("ph").string != "X")
            continue;
        EXPECT_GE(e.at("ts").number, last_ts);
        last_ts = e.at("ts").number;
    }
}
