/**
 * @file
 * obs::Profiler unit tests: label attribution, scope nesting and
 * self-time, the JSON schema of the `host` stats section, trace
 * emission, allocation-counter gating, and aggregate reset.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/alloc_counters.hh"
#include "common/event_queue.hh"
#include "common/json.hh"
#include "obs/profiler.hh"
#include "obs/trace_event.hh"
#include "../support/mini_json.hh"

namespace {

using fp::common::AllocCounters;
using fp::common::Event;
using fp::common::EventQueue;
using fp::common::JsonWriter;
using fp::obs::HostHotspot;
using fp::obs::Profiler;
using fp::testing::parseJson;

/** Burn a little real time so durations are measurably nonzero. */
void
spin()
{
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 20000; ++i)
        sink += i;
}

const HostHotspot *
find(const std::vector<HostHotspot> &rows, const std::string &label)
{
    for (const HostHotspot &row : rows)
        if (row.label == label)
            return &row;
    return nullptr;
}

TEST(Profiler, AttributesEventsToLabels)
{
    EventQueue queue;
    Profiler profiler;
    profiler.beginRun(&queue);
    queue.schedule([] { spin(); }, 10, Event::prio_default, "store.issue");
    queue.schedule([] { spin(); }, 20, Event::prio_default, "store.issue");
    queue.schedule([] { spin(); }, 30, Event::prio_default, "link.deliver");
    queue.run();
    profiler.endRun();

    EXPECT_EQ(profiler.events(), 3u);
    EXPECT_EQ(profiler.queuePushes(), 3u);
    EXPECT_EQ(profiler.queuePops(), 3u);
    EXPECT_EQ(profiler.queueStaleDrops(), 0u);
    EXPECT_GE(profiler.queuePeakDepth(), 1u);

    auto rows = profiler.hotspots();
    const HostHotspot *store = find(rows, "store.issue");
    const HostHotspot *link = find(rows, "link.deliver");
    ASSERT_NE(store, nullptr);
    ASSERT_NE(link, nullptr);
    EXPECT_EQ(store->count, 2u);
    EXPECT_EQ(link->count, 1u);
    for (const HostHotspot &row : rows) {
        EXPECT_LE(row.self_ns, row.total_ns) << row.label;
        EXPECT_LE(row.max_ns, row.total_ns) << row.label;
    }
}

TEST(Profiler, ScopeNestsEventsAndSeparatesSelfTime)
{
    EventQueue queue;
    Profiler profiler;
    profiler.beginRun(&queue);
    queue.schedule([] { spin(); }, 5, Event::prio_default, "inner.event");
    {
        Profiler::Scope outer(&profiler, "outer.scope");
        queue.run();
    }
    profiler.endRun();

    auto rows = profiler.hotspots();
    const HostHotspot *outer = find(rows, "outer.scope");
    const HostHotspot *inner = find(rows, "inner.event");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // The scope encloses the event: its total covers the event's, and
    // its self time is total minus the nested event's duration.
    EXPECT_GE(outer->total_ns, inner->total_ns);
    EXPECT_LE(outer->self_ns, outer->total_ns - inner->total_ns);
}

TEST(Profiler, TopNLimitsAndSortsBySelfTime)
{
    EventQueue queue;
    Profiler profiler;
    profiler.beginRun(&queue);
    queue.schedule([] { spin(); }, 1, Event::prio_default, "alpha");
    queue.schedule([] {}, 2, Event::prio_default, "beta");
    queue.schedule([] {}, 3, Event::prio_default, "gamma");
    queue.run();
    profiler.endRun();

    auto all = profiler.hotspots();
    EXPECT_EQ(all.size(), 3u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i - 1].self_ns, all[i].self_ns);
    auto top = profiler.hotspots(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].label, all[0].label);
}

TEST(Profiler, NullScopeIsInert)
{
    // Call sites pass the (possibly null) configured profiler straight
    // through; a null profiler must cost nothing and crash nothing.
    Profiler::Scope scope(nullptr, "nothing");
}

TEST(Profiler, BucketsMergeByLabelText)
{
    // Identical label text from different addresses (e.g. the same
    // literal in two translation units) must report as one row.
    static const char first[] = "same.label";
    static const char second[] = "same.label";
    ASSERT_NE(static_cast<const void *>(first),
              static_cast<const void *>(second));

    EventQueue queue;
    Profiler profiler;
    profiler.beginRun(&queue);
    queue.schedule([] {}, 1, Event::prio_default, first);
    queue.schedule([] {}, 2, Event::prio_default, second);
    queue.run();
    profiler.endRun();

    auto rows = profiler.hotspots();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].label, "same.label");
    EXPECT_EQ(rows[0].count, 2u);
}

TEST(Profiler, DumpJsonMatchesSchemaAndAccessors)
{
    EventQueue queue;
    Profiler profiler;
    profiler.beginRun(&queue);
    queue.schedule([] { spin(); }, 10, Event::prio_default, "hot.label");
    {
        Profiler::Scope scope(&profiler, "scope.label");
        queue.run();
    }
    profiler.endRun();

    std::ostringstream os;
    JsonWriter json(os);
    profiler.dumpJson(json);
    ASSERT_TRUE(json.complete());

    auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("events").number, 1.0);
    EXPECT_EQ(doc.at("wall_ns").number,
              static_cast<double>(profiler.wallNs()));
    EXPECT_GE(doc.at("events_per_sec").number, 0.0);
    EXPECT_EQ(doc.at("queue").at("pushes").number, 1.0);
    EXPECT_EQ(doc.at("queue").at("pops").number, 1.0);
    EXPECT_EQ(doc.at("queue").at("stale_drops").number, 0.0);
    EXPECT_GE(doc.at("queue").at("peak_depth").number, 1.0);
    EXPECT_TRUE(doc.at("alloc").has("lambda_events"));
    EXPECT_TRUE(doc.at("alloc").has("wire_messages"));

    const auto &hotspots = doc.at("hotspots");
    ASSERT_TRUE(hotspots.isArray());
    ASSERT_EQ(hotspots.array.size(), 2u);
    for (const auto &row : hotspots.array) {
        EXPECT_TRUE(row.has("label"));
        EXPECT_TRUE(row.has("count"));
        EXPECT_TRUE(row.has("total_ns"));
        EXPECT_TRUE(row.has("self_ns"));
        EXPECT_TRUE(row.has("max_ns"));
    }
}

TEST(Profiler, EmitTraceRendersScopeSlicesUnderHostPid)
{
    EventQueue queue;
    Profiler profiler;
    profiler.beginRun(&queue);
    {
        Profiler::Scope a(&profiler, "slice.a");
        spin();
    }
    {
        Profiler::Scope b(&profiler, "slice.b");
        spin();
    }
    profiler.endRun();

    EXPECT_EQ(profiler.sliceCount(), 2u);
    EXPECT_EQ(profiler.droppedSlices(), 0u);

    fp::obs::TraceSink sink;
    profiler.emitTrace(sink);
    // 2 metadata (process + thread name) + 2 slices + 1 counter.
    EXPECT_EQ(sink.eventCount(), 5u);

    std::ostringstream os;
    sink.write(os);
    auto doc = parseJson(os.str());
    bool saw_host_pid = false;
    for (const auto &event : doc.at("traceEvents").array) {
        if (event.at("pid").number ==
            static_cast<double>(fp::obs::trace_pid_host))
            saw_host_pid = true;
    }
    EXPECT_TRUE(saw_host_pid);
}

TEST(Profiler, AllocCountersOnlyCountWhileAProfilerIsActive)
{
    EventQueue queue;
    // Nobody profiling: the counting branch stays cold.
    ASSERT_EQ(AllocCounters::active.load(), 0);
    auto lambda_before = AllocCounters::lambda_events.load();
    queue.schedule([] {}, 1);
    EXPECT_EQ(AllocCounters::lambda_events.load(), lambda_before);
    queue.run();

    Profiler profiler;
    profiler.beginRun(&queue);
    queue.schedule([] {}, 10);
    queue.schedule([] {}, 11);
    queue.run();
    profiler.endRun();
    EXPECT_EQ(profiler.lambdaEventAllocs(), 2u);
    EXPECT_EQ(AllocCounters::active.load(), 0);
}

TEST(Profiler, AggregatesAccumulateAcrossRunsAndResetClears)
{
    Profiler profiler;
    for (int rep = 0; rep < 2; ++rep) {
        EventQueue queue; // fresh queue per rep, as cmdProfile does
        profiler.beginRun(&queue);
        queue.schedule([] { spin(); }, 1, Event::prio_default, "rep.work");
        queue.run();
        profiler.endRun();
    }
    EXPECT_EQ(profiler.events(), 2u);
    EXPECT_EQ(profiler.queuePushes(), 2u);
    EXPECT_GT(profiler.wallNs(), 0u);
    EXPECT_GT(profiler.eventsPerSec(), 0.0);
    auto rows = profiler.hotspots();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].count, 2u);

    profiler.reset();
    EXPECT_EQ(profiler.events(), 0u);
    EXPECT_EQ(profiler.wallNs(), 0u);
    EXPECT_EQ(profiler.queuePushes(), 0u);
    EXPECT_EQ(profiler.lambdaEventAllocs(), 0u);
    EXPECT_TRUE(profiler.hotspots().empty());
    EXPECT_EQ(profiler.sliceCount(), 0u);
    EXPECT_EQ(profiler.eventsPerSec(), 0.0);
}

} // namespace
