/**
 * @file
 * HealthMonitor tests. The watchdog's decision core is
 * evaluate(now_ns) -- a pure function of externally supplied clock
 * readings and the attached progress atomics -- so the stall scenarios
 * (wedged queue, quiescent sweep, episode re-arming) are driven with
 * synthetic timestamps and never sleep. One test exercises the real
 * start()/stop() thread path end to end; the file name carries
 * "thread" so the TSan preset (`ctest -L threadsafe`) covers it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>

#include "common/event_queue.hh"
#include "obs/flight_recorder.hh"
#include "obs/health.hh"
#include "../support/mini_json.hh"

using namespace fp;
using fp::testing::parseJson;
using obs::FlightRecorder;
using obs::HealthMonitor;

namespace {

constexpr std::uint64_t ms = 1'000'000ULL;

HealthMonitor::Options
syntheticOptions()
{
    HealthMonitor::Options options;
    options.heartbeat_ns = 10 * ms;
    options.stall_ns = 50 * ms;
    return options;
}

/**
 * A recorder wedged mid-run: three events queued, exactly one
 * executed, so the published counters show depth > 0 with processing
 * frozen -- the signature of a stuck handler.
 */
void
wedgeRecorder(common::EventQueue &queue, FlightRecorder &recorder)
{
    queue.addObserver(&recorder);
    recorder.beginRun(&queue);
    for (int i = 0; i < 3; ++i)
        queue.schedule([]() {}, 10 * (i + 1),
                       common::Event::prio_default, "health.wedged");
    ASSERT_TRUE(queue.step());
    queue.removeObserver(&recorder);
    ASSERT_GT(recorder.queueDepth(), 0u);
}

} // namespace

TEST(HealthMonitor, WedgedQueueIsDiagnosedWithinStallThreshold)
{
    common::EventQueue queue;
    FlightRecorder recorder(16);
    wedgeRecorder(queue, recorder);

    HealthMonitor monitor(syntheticOptions());
    monitor.attachRecorder(&recorder);

    std::uint64_t t0 = 1'000'000'000ULL;
    EXPECT_FALSE(monitor.evaluate(t0)); // arming sample
    EXPECT_EQ(monitor.heartbeats(), 1u);

    // Progress frozen but still inside the threshold: no diagnosis.
    EXPECT_FALSE(monitor.evaluate(t0 + 49 * ms));
    EXPECT_EQ(monitor.stallsDetected(), 0u);

    // One heartbeat interval later the frozen signature crosses the
    // threshold with work still queued: exactly one wedged episode.
    EXPECT_TRUE(monitor.evaluate(t0 + 59 * ms));
    EXPECT_EQ(monitor.stallsDetected(), 1u);
    // The episode does not re-fire while still stalled.
    EXPECT_FALSE(monitor.evaluate(t0 + 200 * ms));
    EXPECT_EQ(monitor.stallsDetected(), 1u);
}

TEST(HealthMonitor, StallReArmsAfterProgressResumes)
{
    common::EventQueue queue;
    FlightRecorder recorder(16);
    wedgeRecorder(queue, recorder);

    HealthMonitor monitor(syntheticOptions());
    monitor.attachRecorder(&recorder);

    std::uint64_t t0 = 1'000'000'000ULL;
    EXPECT_FALSE(monitor.evaluate(t0));
    EXPECT_TRUE(monitor.evaluate(t0 + 60 * ms));

    // The wedged handler comes back to life: signature moves, the
    // episode re-arms ...
    recorder.record(obs::FlightKind::note, 99, "health.progress");
    EXPECT_FALSE(monitor.evaluate(t0 + 70 * ms));
    // ... and a second freeze is a second episode.
    EXPECT_TRUE(monitor.evaluate(t0 + 70 * ms + 51 * ms));
    EXPECT_EQ(monitor.stallsDetected(), 2u);
}

TEST(HealthMonitor, QuiescentSweepIsDiagnosed)
{
    // Queue drained (depth 0) but the sweep still has shards
    // outstanding: the "quiescent" flavor of stall.
    FlightRecorder recorder(16);
    std::atomic<std::uint64_t> done{1};
    std::atomic<std::uint64_t> total{4};

    HealthMonitor monitor(syntheticOptions());
    monitor.attachRecorder(&recorder);
    monitor.setSweepProgress(&done, &total);

    std::uint64_t t0 = 1'000'000'000ULL;
    EXPECT_FALSE(monitor.evaluate(t0));
    EXPECT_TRUE(monitor.evaluate(t0 + 60 * ms));
    EXPECT_EQ(monitor.stallsDetected(), 1u);
}

TEST(HealthMonitor, FinishedRunNeverStalls)
{
    // Depth 0 and no outstanding sweep: frozen counters mean "done",
    // not "stuck".
    FlightRecorder recorder(16);
    HealthMonitor monitor(syntheticOptions());
    monitor.attachRecorder(&recorder);

    std::uint64_t t0 = 1'000'000'000ULL;
    EXPECT_FALSE(monitor.evaluate(t0));
    EXPECT_FALSE(monitor.evaluate(t0 + 500 * ms));
    EXPECT_EQ(monitor.stallsDetected(), 0u);
    // Heartbeats kept flowing the whole time.
    EXPECT_EQ(monitor.heartbeats(), 2u);
}

TEST(HealthMonitor, NoProgressSourceMeansNoDiagnosis)
{
    HealthMonitor monitor(syntheticOptions());
    std::uint64_t t0 = 1'000'000'000ULL;
    EXPECT_FALSE(monitor.evaluate(t0));
    EXPECT_FALSE(monitor.evaluate(t0 + 1000 * ms));
    EXPECT_EQ(monitor.stallsDetected(), 0u);
}

TEST(HealthMonitor, HeartbeatCadenceFollowsInterval)
{
    HealthMonitor::Options options;
    options.heartbeat_ns = 10 * ms;
    HealthMonitor monitor(options);

    std::uint64_t t0 = 1'000'000'000ULL;
    monitor.evaluate(t0);           // first sample always beats
    monitor.evaluate(t0 + 3 * ms);  // inside the interval: no beat
    monitor.evaluate(t0 + 11 * ms); // past it: beat
    monitor.evaluate(t0 + 12 * ms); // inside again
    monitor.evaluate(t0 + 25 * ms); // beat
    EXPECT_EQ(monitor.heartbeats(), 3u);
}

TEST(HealthMonitorThread, WatchdogThreadEmitsParsableHeartbeats)
{
    common::EventQueue queue;
    FlightRecorder recorder(16);
    queue.addObserver(&recorder);
    recorder.beginRun(&queue);
    queue.schedule([]() {}, 5, common::Event::prio_default,
                   "health.thread_smoke");
    queue.run();
    recorder.endRun();
    queue.removeObserver(&recorder);

    const std::string sink =
        ::testing::TempDir() + "health_thread_heartbeat.ndjson";
    HealthMonitor::Options options;
    options.heartbeat_ns = 5 * ms;
    options.heartbeat_path = sink;
    HealthMonitor monitor(options);
    monitor.attachRecorder(&recorder);

    monitor.start();
    monitor.start(); // idempotent
    // The watchdog beats every 5 ms; poll with a bound generous enough
    // for loaded CI machines instead of one fixed sleep.
    for (int spin = 0; spin < 4000 && monitor.heartbeats() < 2; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    monitor.stop();
    monitor.stop(); // idempotent
    EXPECT_GE(monitor.heartbeats(), 2u);

    std::ifstream in(sink);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    auto doc = parseJson(line);
    EXPECT_EQ(doc.at("kind").string, "heartbeat");
    EXPECT_EQ(doc.at("schema_version").number, 1.0);
    EXPECT_EQ(doc.at("events").number, 1.0);
    EXPECT_EQ(doc.at("queue").at("processed").number, 1.0);
    EXPECT_TRUE(doc.has("alloc"));
    EXPECT_TRUE(doc.has("rss_hwm_kb"));
}
