/**
 * @file
 * A minimal recursive-descent JSON parser for test assertions.
 *
 * Only the tests use this: production code writes JSON through
 * common::JsonWriter but never needs to read it back. The parser
 * accepts the full JSON grammar (objects, arrays, strings with
 * escapes, numbers, booleans, null) and throws std::runtime_error with
 * a byte offset on malformed input, so a test failure points at the
 * defect in the writer.
 */

#ifndef FP_TESTS_SUPPORT_MINI_JSON_HH
#define FP_TESTS_SUPPORT_MINI_JSON_HH

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace fp::testing {

struct JsonValue
{
    enum class Kind { null, boolean, number, string, array, object };

    Kind kind = Kind::null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::null; }
    bool isObject() const { return kind == Kind::object; }
    bool isArray() const { return kind == Kind::array; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }

    bool
    has(const std::string &key) const
    {
        return kind == Kind::object && object.count(key) > 0;
    }

    /** Object member access; throws when absent or not an object. */
    const JsonValue &
    at(const std::string &key) const
    {
        if (kind != Kind::object)
            throw std::runtime_error("not an object: ." + key);
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
};

class MiniJsonParser
{
  public:
    explicit MiniJsonParser(const std::string &text) : _text(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (_pos != _text.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at byte " +
                                 std::to_string(_pos) + ": " + why);
    }

    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    char
    peek()
    {
        skipSpace();
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 _text[_pos] + "'");
        ++_pos;
    }

    bool
    consumeLiteral(const char *literal)
    {
        std::size_t len = std::string(literal).size();
        if (_text.compare(_pos, len, literal) != 0)
            return false;
        _pos += len;
        return true;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::string;
            v.string = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::boolean;
            if (consumeLiteral("true"))
                v.boolean = true;
            else if (consumeLiteral("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          }
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::object;
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            v.object.emplace(std::move(key), parseValue());
            char c = peek();
            ++_pos;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::array;
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            char c = peek();
            ++_pos;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_pos >= _text.size())
                fail("dangling escape");
            char esc = _text[_pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                unsigned long code = std::strtoul(
                    _text.substr(_pos, 4).c_str(), nullptr, 16);
                _pos += 4;
                // The writer only emits \u for control characters, so
                // a single byte always suffices here.
                out.push_back(static_cast<char>(code & 0x7f));
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        std::size_t start = _pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '-' || _text[_pos] == '+' ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E'))
            ++_pos;
        if (_pos == start)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::number;
        v.number = std::atof(_text.substr(start, _pos - start).c_str());
        return v;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

/** Parse @p text; throws std::runtime_error on malformed input. */
inline JsonValue
parseJson(const std::string &text)
{
    return MiniJsonParser(text).parse();
}

} // namespace fp::testing

#endif // FP_TESTS_SUPPORT_MINI_JSON_HH
