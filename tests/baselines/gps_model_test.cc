/** Unit tests for the GPS subscription model (Section VI-B). */

#include <gtest/gtest.h>

#include "baselines/gps_model.hh"

using namespace fp;
using namespace fp::baselines;

namespace {

trace::IterationWork
iterationWithConsumption()
{
    trace::IterationWork iter;
    iter.per_gpu.resize(4);
    iter.consumed.resize(4);
    // GPU 1 reads pages at 0x0000 and 0x3000..0x5000.
    iter.consumed[1].push_back(icn::AddrRange{0x100, 8});
    iter.consumed[1].push_back(icn::AddrRange{0x3ff0, 0x1020});
    // GPU 2 reads nothing.
    return iter;
}

} // namespace

TEST(GpsModelTest, SubscribesTouchedPages)
{
    GpsModel gps;
    gps.beginIteration(iterationWithConsumption());
    EXPECT_TRUE(gps.subscribed(1, 0x100));
    EXPECT_TRUE(gps.subscribed(1, 0xfff));  // same 4 KiB page
    EXPECT_FALSE(gps.subscribed(1, 0x1000)); // untouched page
    // The range straddling pages subscribes every covered page.
    EXPECT_TRUE(gps.subscribed(1, 0x3000));
    EXPECT_TRUE(gps.subscribed(1, 0x4000));
    EXPECT_TRUE(gps.subscribed(1, 0x5000));
    EXPECT_FALSE(gps.subscribed(1, 0x6000));
}

TEST(GpsModelTest, NonReadersUnsubscribed)
{
    GpsModel gps;
    gps.beginIteration(iterationWithConsumption());
    EXPECT_FALSE(gps.subscribed(2, 0x100));
    EXPECT_FALSE(gps.subscribed(3, 0x3000));
}

TEST(GpsModelTest, NoDataMeansConservativeSend)
{
    GpsModel gps;
    EXPECT_TRUE(gps.subscribed(0, 0x1234));
    EXPECT_TRUE(gps.subscribed(9, 0x1234));
}

TEST(GpsModelTest, IterationRebuildReplacesSubscriptions)
{
    GpsModel gps;
    gps.beginIteration(iterationWithConsumption());
    ASSERT_TRUE(gps.subscribed(1, 0x100));

    trace::IterationWork other;
    other.per_gpu.resize(4);
    other.consumed.resize(4);
    other.consumed[1].push_back(icn::AddrRange{0x9000, 4});
    gps.beginIteration(other);
    EXPECT_FALSE(gps.subscribed(1, 0x100));
    EXPECT_TRUE(gps.subscribed(1, 0x9000));
}

TEST(GpsModelTest, FilterCounter)
{
    GpsModel gps;
    EXPECT_EQ(gps.storesFiltered(), 0u);
    gps.countFiltered();
    gps.countFiltered();
    EXPECT_EQ(gps.storesFiltered(), 2u);
}

TEST(GpsModelTest, CustomPageSize)
{
    GpsModel gps(256);
    trace::IterationWork iter;
    iter.per_gpu.resize(2);
    iter.consumed.resize(2);
    iter.consumed[0].push_back(icn::AddrRange{0x100, 4});
    gps.beginIteration(iter);
    EXPECT_TRUE(gps.subscribed(0, 0x1ff));
    EXPECT_FALSE(gps.subscribed(0, 0x200));
}
